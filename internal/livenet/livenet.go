// Package livenet runs the generated ecosystem over a real HTTP stack on
// the loopback interface: every virtual host (partner bid endpoints,
// publisher ad servers, CDNs) is served by a net/http server, and a
// browser.Env implementation routes page fetches to it while preserving
// the logical URLs the detector inspects. This is the integration-proof
// environment: the same wrapper, detector and crawl logic that runs on
// the virtual clock runs here over actual sockets.
package livenet

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"headerbid/internal/obs"
	"headerbid/internal/sitegen"
	"headerbid/internal/urlkit"
	"headerbid/internal/webreq"
)

// Server hosts the world over one loopback HTTP listener, routing by Host
// header. Two operator paths are served before host dispatch on every
// virtual host: /healthz (liveness) and /metrics (Prometheus text:
// request counts and per-endpoint-class latency histograms).
type Server struct {
	World *World
	eco   *sitegen.Ecosystem

	listener net.Listener
	httpSrv  *http.Server
	// ServiceScale multiplies handler service times; use <1 to speed up
	// integration tests (latency semantics compress proportionally).
	ServiceScale float64
	// Stats aggregates request counts and per-class latency histograms
	// (always on; exposed on /metrics).
	Stats *obs.ServerStats
	// AccessLog, when non-nil, receives one logfmt line per request
	// (host, path, status, class, service time, running request count).
	// Set before serving traffic; writes are serialized internally.
	AccessLog io.Writer

	logMu sync.Mutex
}

// World aliases sitegen.World for readability at call sites.
type World = sitegen.World

// Serve starts serving a world on 127.0.0.1:0 and returns the server.
func Serve(w *World, serviceScale float64) (*Server, error) {
	if serviceScale <= 0 {
		serviceScale = 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("livenet: %w", err)
	}
	s := &Server{
		World:        w,
		eco:          sitegen.NewEcosystem(w),
		listener:     ln,
		ServiceScale: serviceScale,
		Stats:        obs.NewServerStats(),
	}
	s.httpSrv = &http.Server{Handler: http.HandlerFunc(s.route)}
	go s.httpSrv.Serve(ln)
	return s, nil
}

// Addr returns the loopback address all hosts resolve to.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}

// route dispatches by Host header to the ecosystem handlers, then sleeps
// the (scaled) service time before answering — real latency on a real
// socket. The operator paths /healthz and /metrics are intercepted
// before host dispatch, so they answer on any virtual host.
func (s *Server) route(rw http.ResponseWriter, req *http.Request) {
	switch req.URL.Path {
	case "/healthz":
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(rw, "ok\n")
		return
	case "/metrics":
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.Stats.WriteProm(rw)
		return
	}

	host := req.Host
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	domain := urlkit.RegistrableDomain(host)

	var body []byte
	if req.Body != nil {
		body, _ = io.ReadAll(io.LimitReader(req.Body, 1<<22))
	}
	wr := &webreq.Request{
		URL:    "https://" + host + req.URL.RequestURI(),
		Method: webreq.Method(req.Method),
		Body:   string(body),
		Sent:   time.Now(), //hbvet:allow detwall livenet serves real HTTP; request timestamps are genuinely wall-clock
	}

	status, respBody, service, class := s.dispatch(domain, wr)
	if service > 0 {
		//hbvet:allow detwall simulated service latency over a real socket must burn real time
		time.Sleep(time.Duration(float64(service) * s.ServiceScale))
	}
	rw.WriteHeader(status)
	io.WriteString(rw, respBody)

	//hbvet:allow detwall served-request latency on a real HTTP stack is wall-clock by definition
	s.Stats.Observe(class, time.Since(wr.Sent))
	s.accessLog(domain, req.URL.Path, status, class, service)
}

// accessLog appends one structured (logfmt) line per served request.
func (s *Server) accessLog(domain, path string, status int, class obs.EndpointClass, service time.Duration) {
	if s.AccessLog == nil {
		return
	}
	b := make([]byte, 0, 128)
	b = append(b, "host="...)
	b = append(b, domain...)
	b = append(b, " path="...)
	b = append(b, path...)
	b = append(b, " status="...)
	b = strconv.AppendInt(b, int64(status), 10)
	b = append(b, " class="...)
	b = append(b, class.String()...)
	b = append(b, " service_ms="...)
	b = strconv.AppendFloat(b, float64(service)/float64(time.Millisecond), 'f', 1, 64)
	b = append(b, " served="...)
	b = strconv.AppendUint(b, s.Stats.Requests(), 10)
	b = append(b, '\n')
	s.logMu.Lock()
	s.AccessLog.Write(b)
	s.logMu.Unlock()
}

func (s *Server) dispatch(domain string, wr *webreq.Request) (int, string, time.Duration, obs.EndpointClass) {
	if p, ok := s.World.Registry.ByURL(wr.URL); ok {
		st, body, svc := s.eco.HandlePartner(p, wr)
		return st, body, svc, obs.ClassPartner
	}
	if site, ok := s.World.SiteByDomain(domain); ok {
		st, body, svc := s.eco.HandleSite(site, wr)
		return st, body, svc, obs.ClassSite
	}
	switch domain {
	case sitegen.CreativeHost:
		st, body, svc := s.eco.HandleCreative(wr)
		return st, body, svc, obs.ClassCreative
	default:
		if strings.Contains(domain, "static.example") ||
			strings.Contains(domain, "prebid.example") ||
			strings.Contains(domain, "pubfood.example") ||
			strings.Contains(domain, "googletagservices.com") {
			st, body, svc := s.eco.HandleCDN(wr)
			return st, body, svc, obs.ClassCDN
		}
	}
	return 404, "unknown host " + domain, 0, obs.ClassOther
}

// Env is a browser.Env over real time, a single-goroutine event loop, and
// an http.Client whose dialer routes every hostname to the live server.
type Env struct {
	server *Server
	client *http.Client

	loopCh  chan func()
	doneCh  chan struct{}
	stopped sync.Once
}

// NewEnv creates (and starts) a page environment bound to the server.
func NewEnv(s *Server) *Env {
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			// Every logical host resolves to the loopback server.
			return dialer.DialContext(ctx, network, s.Addr())
		},
		MaxIdleConnsPerHost: 64,
	}
	e := &Env{
		server: s,
		client: &http.Client{Transport: transport, Timeout: 90 * time.Second},
		loopCh: make(chan func(), 1024),
		doneCh: make(chan struct{}),
	}
	go e.loop()
	return e
}

// loop is the single logical thread all callbacks run on.
func (e *Env) loop() {
	for {
		select {
		case fn := <-e.loopCh:
			fn()
		case <-e.doneCh:
			return
		}
	}
}

// Close stops the event loop.
func (e *Env) Close() { e.stopped.Do(func() { close(e.doneCh) }) }

// Now returns wall-clock time.
//
//hbvet:allow detwall livenet IS the wall-clock browser.Env: the integration proof that the pipeline survives real time
func (e *Env) Now() time.Time { return time.Now() }

// Post schedules fn on the event loop.
func (e *Env) Post(fn func()) {
	select {
	case e.loopCh <- fn:
	case <-e.doneCh:
	}
}

// After schedules fn on the event loop after d of real time.
func (e *Env) After(d time.Duration, fn func()) {
	//hbvet:allow detwall real timers are the live analogue of the scheduler's virtual After
	time.AfterFunc(d, func() { e.Post(fn) })
}

// Fetch performs the request over real HTTP. The logical URL keeps its
// virtual hostname (what the detector matches on); only the socket dials
// the loopback server. HTTPS URLs are fetched as plain HTTP — transport
// security is irrelevant to the measurement semantics.
func (e *Env) Fetch(req *webreq.Request, cb func(*webreq.Response)) {
	go func() {
		url := strings.Replace(req.URL, "https://", "http://", 1)
		var httpReq *http.Request
		var err error
		if req.Method == webreq.POST {
			httpReq, err = http.NewRequest("POST", url, strings.NewReader(req.Body))
		} else {
			httpReq, err = http.NewRequest(string(req.Method), url, nil)
		}
		if err != nil {
			e.Post(func() { cb(&webreq.Response{RequestID: req.ID, Err: err.Error()}) })
			return
		}
		resp, err := e.client.Do(httpReq)
		if err != nil {
			e.Post(func() { cb(&webreq.Response{RequestID: req.ID, Err: err.Error()}) })
			return
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		resp.Body.Close()
		e.Post(func() {
			cb(&webreq.Response{RequestID: req.ID, Status: resp.StatusCode, Body: string(body)})
		})
	}()
}

// WaitSettled blocks until the page's pending request count stays at zero
// for quiet, or deadline passes. It is the live analogue of running the
// virtual clock forward.
func WaitSettled(pending func() int, quiet, deadline time.Duration) bool {
	//hbvet:allow detwall polling a live HTTP stack for quiescence is inherently wall-clock
	end := time.Now().Add(deadline)
	quietStart := time.Time{}
	//hbvet:allow detwall wall-clock deadline loop over a real network
	for time.Now().Before(end) {
		if pending() == 0 {
			if quietStart.IsZero() {
				//hbvet:allow detwall wall-clock quiet-window tracking
				quietStart = time.Now()
			} else if time.Since(quietStart) >= quiet { //hbvet:allow detwall real elapsed time in the live quiet-window check
				return true
			}
		} else {
			quietStart = time.Time{}
		}
		//hbvet:allow detwall poll interval between live pending-count samples
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
