package livenet

import (
	"strings"
	"testing"
	"time"

	"headerbid/internal/browser"
	"headerbid/internal/core"
	"headerbid/internal/hb"
	"headerbid/internal/pagert"
	"headerbid/internal/sitegen"
	"headerbid/internal/webreq"
)

func liveWorld(t *testing.T, n int) (*sitegen.World, *Server, *Env) {
	t.Helper()
	cfg := sitegen.DefaultConfig(23)
	cfg.NumSites = n
	w := sitegen.Generate(cfg)
	srv, err := Serve(w, 0.05) // 20x time compression for test speed
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	env := NewEnv(srv)
	t.Cleanup(env.Close)
	return w, srv, env
}

// fetchSync issues a fetch and waits for its callback.
func fetchSync(t *testing.T, env *Env, url string) *webreq.Response {
	t.Helper()
	ch := make(chan *webreq.Response, 1)
	env.Fetch(&webreq.Request{ID: 1, URL: url, Method: webreq.GET}, func(r *webreq.Response) {
		ch <- r
	})
	select {
	case r := <-ch:
		return r
	case <-time.After(20 * time.Second):
		t.Fatalf("fetch of %s timed out", url)
		return nil
	}
}

func TestServeDocumentOverRealHTTP(t *testing.T) {
	w, _, env := liveWorld(t, 60)
	site := w.HBSites()[0]
	resp := fetchSync(t, env, site.PageURL())
	if !resp.OK() || !strings.Contains(resp.Body, site.Domain) {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestPartnerEndpointOverRealHTTP(t *testing.T) {
	w, _, env := liveWorld(t, 60)
	_ = w
	resp := fetchSync(t, env, "https://sync.adnxs.com/pixel")
	if resp.Status != 204 {
		t.Fatalf("pixel status = %d (err %q)", resp.Status, resp.Err)
	}
}

func TestUnknownHostIs404(t *testing.T) {
	_, _, env := liveWorld(t, 20)
	resp := fetchSync(t, env, "https://no-such-host.example/x")
	if resp.Status != 404 {
		t.Fatalf("status = %d", resp.Status)
	}
}

// TestFullVisitOverRealHTTP is the integration proof: the identical
// browser + wrapper + detector stack that runs on the virtual clock runs
// over real sockets, and the detector reaches the same verdict as the
// ground truth.
func TestFullVisitOverRealHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("live integration test")
	}
	w, _, env := liveWorld(t, 240)

	for _, facet := range []hb.Facet{hb.FacetClient, hb.FacetServer, hb.FacetHybrid} {
		var site *sitegen.Site
		for _, s := range w.HBSites() {
			if s.Facet == facet && len(s.AdUnits) <= 6 {
				site = s
				break
			}
		}
		if site == nil {
			t.Fatalf("no %v site generated", facet)
		}

		opts := browser.DefaultOptions()
		opts.PageTimeout = 30 * time.Second
		b := browser.New(env, pagert.New(w.Registry), opts)

		// Visit and attach on the env loop: response delivery runs there,
		// so wiring the detector from another goroutine would race.
		loaded := make(chan struct{})
		type wired struct {
			page *browser.Page
			det  *core.Detector
		}
		wiredCh := make(chan wired, 1)
		env.Post(func() {
			page := b.Visit(site.PageURL(), func(p *browser.Page, vr *browser.VisitResult) {
				if !vr.Loaded {
					t.Errorf("%v: page failed: %+v", facet, vr)
				}
				close(loaded)
			})
			wiredCh <- wired{page: page, det: core.Attach(page, w.Registry)}
		})
		var page *browser.Page
		var det *core.Detector
		select {
		case wd := <-wiredCh:
			page, det = wd.page, wd.det
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: visit never started", facet)
		}

		select {
		case <-loaded:
		case <-time.After(30 * time.Second):
			t.Fatalf("%v: page never loaded", facet)
		}

		// Wait for the page to settle (no pending requests).
		settled := WaitSettled(func() int {
			ch := make(chan int, 1)
			env.Post(func() { ch <- page.Inspector.Pending() })
			select {
			case n := <-ch:
				return n
			case <-time.After(time.Second):
				return 1
			}
		}, 200*time.Millisecond, 25*time.Second)
		if !settled {
			t.Logf("%v: page did not fully settle; proceeding with partial observation", facet)
		}

		obsCh := make(chan *core.Observation, 1)
		env.Post(func() { obsCh <- det.Observation() })
		var obs *core.Observation
		select {
		case obs = <-obsCh:
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: observation never returned", facet)
		}

		if !obs.HB {
			t.Errorf("%v site not detected as HB over live HTTP", facet)
			continue
		}
		if obs.Facet != facet {
			t.Errorf("live facet = %v, ground truth %v", obs.Facet, facet)
		}
		if obs.RequestCount == 0 || obs.TotalHBLatency <= 0 {
			t.Errorf("%v: degenerate observation: requests=%d latency=%v",
				facet, obs.RequestCount, obs.TotalHBLatency)
		}
	}
}

func TestWaitSettled(t *testing.T) {
	n := 3
	ok := WaitSettled(func() int {
		if n > 0 {
			n--
		}
		return n
	}, 10*time.Millisecond, time.Second)
	if !ok {
		t.Fatal("did not settle")
	}
	bad := WaitSettled(func() int { return 1 }, 10*time.Millisecond, 100*time.Millisecond)
	if bad {
		t.Fatal("settled while pending")
	}
}

func TestEnvPostOrdering(t *testing.T) {
	_, _, env := liveWorld(t, 10)
	ch := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Post(func() { ch <- i })
	}
	for want := 0; want < 3; want++ {
		select {
		case got := <-ch:
			if got != want {
				t.Fatalf("order: got %d want %d", got, want)
			}
		case <-time.After(time.Second):
			t.Fatal("loop stalled")
		}
	}
}
