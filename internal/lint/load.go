package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// This file is hbvet's package loader: a minimal, offline equivalent of
// golang.org/x/tools/go/packages built on `go list -export`. The go
// command compiles (or reuses from the build cache) every dependency
// and reports the path of each package's export data; the target
// packages themselves are parsed and typechecked from source with the
// standard library's gc importer reading that export data. No network,
// no third-party modules, full types.Info.

// A Package is one typechecked target package ready for analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output hbvet consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over patterns in dir and
// returns the decoded packages (dependencies first, roots flagged with
// DepOnly=false).
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over the export
// files `go list` reported.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load typechecks the packages matching patterns (resolved relative to
// dir, e.g. "./..."), returning them sorted by import path. Test files
// are not loaded: hbvet checks the shipped sources; tests measure wall
// time and seed ad-hoc RNGs legitimately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var roots []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	pkgs := make([]*Package, 0, len(roots))
	for _, r := range roots {
		files := make([]string, len(r.GoFiles))
		for i, f := range r.GoFiles {
			files[i] = filepath.Join(r.Dir, f)
		}
		pkg, err := checkFiles(fset, imp, r.ImportPath, r.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir typechecks a single directory of Go files as the package at
// the given (possibly synthetic) import path, resolving its imports via
// `go list -export` run from moduleDir. This is the testdata loader:
// testdata packages live outside the module's package graph but still
// get full type information.
func LoadDir(moduleDir, pkgDir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(pkgDir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", pkgDir)
	}
	sort.Strings(files)

	// Parse first to learn the import set, then ask the go command for
	// export data of exactly those packages (and their deps).
	fset := token.NewFileSet()
	var asts []*ast.File
	imports := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	patterns := make([]string, 0, len(imports))
	for path := range imports {
		patterns = append(patterns, path)
	}
	sort.Strings(patterns)

	exports := make(map[string]string)
	if len(patterns) > 0 {
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	return checkPreparsed(fset, imp, pkgPath, pkgDir, asts)
}

// checkFiles parses and typechecks one package's source files.
func checkFiles(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	asts := make([]*ast.File, 0, len(files))
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return checkPreparsed(fset, imp, pkgPath, dir, asts)
}

func checkPreparsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, asts []*ast.File) (*Package, error) {
	info := newTypesInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, asts, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, errors.Join(typeErrs...))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		Path:  pkgPath,
		Dir:   dir,
		Fset:  fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}, nil
}
