package lint

import (
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// This file is the analyzer test harness, an analysistest equivalent on
// the stdlib loader: each analyzer gets a testdata package under
// testdata/src/<name>/ whose expected findings are declared in place
// with trailing comments of the form
//
//	expr // want <rule> "message substring"
//
// (several rule/substring pairs may follow one want). The harness
// typechecks the package with LoadDir, runs the analyzer directly —
// bypassing its Applies scope filter, since testdata lives at a
// synthetic import path — and then requires an exact match: every want
// satisfied by a diagnostic on its line, every diagnostic claimed by a
// want. //hbvet:allow directives in testdata are honored exactly as in
// real code, so a suppressed site simply carries no want: if
// suppression regressed, the stray diagnostic fails the test.

func TestDetwallTestdata(t *testing.T)    { checkTestdata(t, Detwall, "detwall") }
func TestHotallocTestdata(t *testing.T)   { checkTestdata(t, Hotalloc, "hotalloc") }
func TestMetriclawsTestdata(t *testing.T) { checkTestdata(t, Metriclaws, "metriclaws") }
func TestSinkctxTestdata(t *testing.T)    { checkTestdata(t, Sinkctx, "sinkctx") }
func TestObsguardTestdata(t *testing.T)   { checkTestdata(t, Obsguard, "obsguard") }
func TestRecoverscopeTestdata(t *testing.T) {
	checkTestdata(t, Recoverscope, "recoverscope")
}

// expectation is one parsed `// want rule "substring"` pair.
type expectation struct {
	file    string
	line    int
	rule    string
	substr  string
	matched bool
}

// wantRe matches one `rule "substring"` pair after the want keyword.
var wantRe = regexp.MustCompile(`([a-z]+)\s+"([^"]*)"`)

const wantPrefix = "// want "

// parseWants collects the expectations declared in a package's comments.
func parseWants(fset *token.FileSet, pkg *Package) []*expectation {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, wantPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[len(wantPrefix):], -1) {
					wants = append(wants, &expectation{
						file:   pos.Filename,
						line:   pos.Line,
						rule:   m[1],
						substr: m[2],
					})
				}
			}
		}
	}
	return wants
}

// loadTestdata typechecks testdata/src/<name> as a synthetic package
// outside the module graph (imports resolve against the real module).
func loadTestdata(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadDir(".", "testdata/src/"+name, "hbvettest/"+name)
	if err != nil {
		t.Fatalf("loading testdata/src/%s: %v", name, err)
	}
	return pkg
}

// runOn applies one analyzer to one package the way RunAnalyzers does —
// same suppression scan, same malformed-directive reporting — but
// without the Applies scope filter: the harness chooses the target.
func runOn(t *testing.T, a *Analyzer, pkg *Package) []Diagnostic {
	t.Helper()
	supp := scanSuppressions(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic{}, supp.malformed...)
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		PkgPath:  pkg.Path,
		supp:     supp,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
	}
	sortDiagnostics(diags)
	return diags
}

// checkTestdata runs the analyzer over its testdata package and
// requires a one-to-one match between diagnostics and wants.
func checkTestdata(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadTestdata(t, name)
	wants := parseWants(pkg.Fset, pkg)
	if len(wants) == 0 {
		t.Fatalf("testdata/src/%s declares no // want expectations", name)
	}
	diags := runOn(t, a, pkg)

outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				w.rule == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.matched = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %s diagnostic containing %q, got none",
				w.file, w.line, w.rule, w.substr)
		}
	}
}
