package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detwall enforces the determinism wall: simulation and analysis code
// must not read the wall clock, start wall timers, use the global
// math/rand stream, or let map iteration order reach emitted output.
// Every byte-identical-output guarantee in the determinism suite — the
// workers-1-vs-N JSONL tests, the golden report pins, the sweep
// baseline equivalences — depends on these three prohibitions.
//
// internal/clock and internal/rng are the only sanctioned sources of
// time and randomness and are exempt; everything else (including cmd/
// and livenet, which legitimately touch the wall clock) must either
// comply or carry an //hbvet:allow detwall directive with a reason.
var Detwall = &Analyzer{
	Name: "detwall",
	Doc: "forbid wall-clock reads, wall timers, global math/rand, and " +
		"map-iteration order leaking into appends or emitted output " +
		"(internal/clock and internal/rng are the sanctioned sources)",
	Applies: func(pkgPath string) bool {
		switch pkgPath {
		case "headerbid/internal/clock", "headerbid/internal/rng":
			return false
		}
		return true
	},
	Run: runDetwall,
}

// wallClockFuncs are the time package entry points that observe or wait
// on the wall clock. Pure time arithmetic (Duration, Date, Unix) stays
// legal: it is deterministic given deterministic inputs.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runDetwall(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Wall-clock entry points, resolved through the type
			// checker so import aliasing can't hide them.
			if pkgFuncUse(pass.Info, sel.Sel) == "time" && wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"call to time.%s reads the wall clock: simulation time must come from the injected clock (internal/clock)",
					sel.Sel.Name)
			}
			// Any use of math/rand (v1 or v2): the global stream is
			// nondeterministic across runs and even seeded sources
			// bypass the splittable, order-independent internal/rng.
			if useFromPackage(pass.Info, sel.Sel, "math/rand") ||
				useFromPackage(pass.Info, sel.Sel, "math/rand/v2") {
				pass.Reportf(sel.Pos(),
					"use of math/rand.%s: all simulation randomness must come from the seeded splittable internal/rng",
					sel.Sel.Name)
			}
			return true
		})
	}
	pass.funcDecls(func(fd *ast.FuncDecl) {
		checkMapOrderLeaks(pass, fd)
	})
	return nil
}

// checkMapOrderLeaks flags range-over-map loops whose iteration order
// can reach output: appends to a variable declared outside the loop
// that is never deterministically sorted afterwards in the same
// function, and direct writes (fmt printing, Write/WriteString methods)
// from inside the loop body.
func checkMapOrderLeaks(pass *Pass, fd *ast.FuncDecl) {
	var loops []*ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && isMapType(typeOf(pass.Info, rs.X)) {
			loops = append(loops, rs)
		}
		return true
	})
	for _, rs := range loops {
		checkMapRangeBody(pass, fd, rs)
	}
}

func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					// Indexed appends (dst[k] = append(dst[k], ...))
					// keyed by the range variable are per-key and
					// order-free; only flat accumulators leak order.
					continue
				}
				obj := pass.Info.Defs[target]
				if obj == nil {
					obj = pass.Info.Uses[target]
				}
				if obj == nil || obj.Pos() == 0 {
					continue
				}
				// Only appends to variables that outlive the loop can
				// publish iteration order.
				if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
					continue
				}
				if sortedAfter(pass, fd, rs, obj) {
					continue
				}
				pass.Reportf(n.Pos(),
					"append to %s inside range over map publishes map iteration order: sort %s afterwards or iterate a sorted key slice",
					target.Name, target.Name)
			}
		case *ast.CallExpr:
			if name, ok := emissionCall(pass.Info, n); ok {
				pass.Reportf(n.Pos(),
					"%s inside range over map emits in map iteration order: iterate a sorted key slice instead",
					name)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether obj is passed to a recognized sorting
// call after the loop ends, within the same function body — the
// canonical collect-keys-then-sort pattern.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if !isSortCall(pass.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			if objUsedIn(pass.Info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the deterministic sorting entry points of the
// sort and slices packages.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	switch pkgFuncUse(info, sel.Sel) {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
			return true
		}
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// emissionCall reports whether call writes output whose byte order
// would reflect the enclosing iteration order: fmt printing or a
// Write/WriteString/WriteByte/WriteRune method (io.Writer,
// strings.Builder, bufio.Writer, ...).
func emissionCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgFuncUse(info, sel.Sel) == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + sel.Sel.Name, true
		}
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return "call to " + sel.Sel.Name, true
		}
	}
	return "", false
}
