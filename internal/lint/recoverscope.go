package lint

import (
	"go/ast"
	"go/types"
)

// Recoverscope polices the crawl's panic discipline, introduced with the
// fault-injection subsystem: degradation must be explicit, never silent.
//
// Two rules:
//
//   - recover() may appear only inside the sanctioned visit-quarantine
//     boundary (crawler.quarantineVisit). A recover anywhere else can
//     swallow a panic before the quarantine machinery labels it, turning
//     a loud failure into a silently wrong dataset. There is no allow
//     escape for this rule outside the sanctioned site — widening the
//     boundary is an API change, not an annotation.
//   - panic() in the hot-path packages (the same nine the hotalloc
//     ceiling covers — every one executes inside the quarantine
//     boundary on each visit) requires an //hbvet:allow recoverscope
//     annotation stating why dying is correct. Precondition panics on
//     API misuse are fine; what the annotation forbids is unreviewed
//     panics on data-dependent paths, which would surface as quarantine
//     records instead of bugs.
var Recoverscope = &Analyzer{
	Name: "recoverscope",
	Doc: "restrict recover() to the sanctioned visit-quarantine site and " +
		"require //hbvet:allow justifications for panic() in hot-path packages",
	Run: runRecoverscope,
}

// quarantinePkg/quarantineFunc name the one sanctioned recover() site:
// the crawl worker's per-visit panic boundary.
const (
	quarantinePkg  = "headerbid/internal/crawler"
	quarantineFunc = "quarantineVisit"
)

// panicScope reports whether the panic sub-rule applies to pkgPath: the
// hot-path packages, plus the analyzer's own testdata package (which the
// harness loads at a synthetic path that bypasses normal scoping).
func panicScope(pkgPath string) bool {
	return hotPathPackages[pkgPath] || pkgPath == "hbvettest/recoverscope"
}

func runRecoverscope(pass *Pass) error {
	checkPanics := panicScope(pass.PkgPath)
	pass.funcDecls(func(fd *ast.FuncDecl) {
		sanctioned := pass.PkgPath == quarantinePkg &&
			fd.Recv == nil && fd.Name.Name == quarantineFunc
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch builtinName(pass.Info, call.Fun) {
			case "recover":
				if !sanctioned {
					pass.Reportf(call.Pos(),
						"recover() outside the sanctioned quarantine boundary (%s.%s): "+
							"panics must reach the visit quarantine so they are labeled, not swallowed",
						quarantinePkg, quarantineFunc)
				}
			case "panic":
				if checkPanics {
					pass.Reportf(call.Pos(),
						"panic() on the hot path runs inside the visit quarantine: "+
							"annotate with //hbvet:allow recoverscope <why dying is correct> "+
							"or return an error")
				}
			}
			return true
		})
	})
	return nil
}

// builtinName resolves a call target to a builtin's name ("" if the
// expression is not a direct use of a predeclared function). Shadowed
// identifiers resolve to their local objects, not *types.Builtin, so a
// user-defined recover() does not trip the rule.
func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
