package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestMalformedDirectives(t *testing.T) {
	src := `package p

//hbvet:allow
func a() {}

//hbvet:allow nosuchrule some reason
func b() {}

//hbvet:allow detwall
func c() {}
`
	s := scanSuppressions(parseSrc(t, src))
	if len(s.malformed) != 3 {
		t.Fatalf("got %d malformed diagnostics, want 3: %v", len(s.malformed), s.malformed)
	}
	for i, wantSub := range []string{
		"malformed directive",
		`unknown rule "nosuchrule"`,
		"no reason",
	} {
		d := s.malformed[i]
		if d.Analyzer != "hbvet" {
			t.Errorf("malformed[%d].Analyzer = %q, want hbvet", i, d.Analyzer)
		}
		if !strings.Contains(d.Message, wantSub) {
			t.Errorf("malformed[%d] = %q, want substring %q", i, d.Message, wantSub)
		}
	}
	// None of the malformed directives suppress anything.
	for line := 1; line <= 11; line++ {
		for _, rule := range []string{"detwall", "hotalloc", "metriclaws", "sinkctx"} {
			if s.covers(rule, "p.go", line) {
				t.Errorf("malformed directive suppresses %s at line %d", rule, line)
			}
		}
	}
}

func TestSuppressionCoverage(t *testing.T) {
	src := `package p

func a() int {
	x := 1 //hbvet:allow detwall trailing reason
	return x
}

//hbvet:allow hotalloc standalone reason
func b() {}

func c() {}
`
	s := scanSuppressions(parseSrc(t, src))
	if len(s.malformed) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %v", s.malformed)
	}
	cases := []struct {
		rule string
		line int
		want bool
	}{
		{"detwall", 4, true},  // the directive's own line
		{"detwall", 5, true},  // first line after the group
		{"detwall", 6, false}, // two lines after: out of reach
		{"hotalloc", 8, true}, // standalone directive line
		{"hotalloc", 9, true}, // the declaration beneath it
		{"hotalloc", 11, false},
		{"hotalloc", 4, false}, // wrong rule for the trailing directive
		{"detwall", 8, false},  // wrong rule for the standalone directive
	}
	for _, c := range cases {
		if got := s.covers(c.rule, "p.go", c.line); got != c.want {
			t.Errorf("covers(%s, p.go, %d) = %v, want %v", c.rule, c.line, got, c.want)
		}
	}
}

func TestDirectiveCoversWholeGroup(t *testing.T) {
	src := `package p

// Explanatory prose above the directive.
//hbvet:allow detwall multi-line group reason
// Trailing prose inside the same group.
func a() {}
`
	s := scanSuppressions(parseSrc(t, src))
	for line := 3; line <= 6; line++ {
		if !s.covers("detwall", "p.go", line) {
			t.Errorf("directive group does not cover line %d", line)
		}
	}
	if s.covers("detwall", "p.go", 7) {
		t.Error("directive reaches past the line after its group")
	}
}

func TestAllAnalyzersWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing Name, Doc or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if !knownRule(a.Name) {
			t.Errorf("knownRule(%q) = false for a registered analyzer", a.Name)
		}
	}
	if knownRule("nosuchrule") {
		t.Error(`knownRule("nosuchrule") = true`)
	}
}

// TestAppliesScopes pins the package scoping each analyzer declares.
func TestAppliesScopes(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{Detwall, "headerbid/internal/crawler", true},
		{Detwall, "headerbid/internal/clock", false},
		{Detwall, "headerbid/internal/rng", false},
		{Hotalloc, "headerbid/internal/pagert", true},
		{Hotalloc, "headerbid/internal/sitegen", true},
		{Hotalloc, "headerbid/internal/report", false},
	}
	for _, c := range cases {
		if got := c.a.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	for _, a := range []*Analyzer{Metriclaws, Sinkctx} {
		if a.Applies != nil {
			t.Errorf("%s.Applies should be nil (every package)", a.Name)
		}
	}
}
