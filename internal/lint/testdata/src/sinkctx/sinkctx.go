// Package sinkctx exercises the cancellation-hygiene analyzer: ignored
// ctx parameters, fresh context roots, and unchecked channel drains.
package sinkctx

import "context"

func ignoredCtx(ctx context.Context, n int) int { // want sinkctx "never used"
	return n * 2
}

func propagated(ctx context.Context, f func(context.Context) error) error {
	return f(ctx)
}

func blankCtx(_ context.Context, n int) int { return n }

func freshRoot(ctx context.Context, f func(context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return f(context.Background()) // want sinkctx "context.Background"
}

func nestedLit(ctx context.Context, run func(func())) {
	// Literals inherit "ctx is in scope" from the enclosing function.
	run(func() {
		_ = context.TODO() // want sinkctx "context.TODO"
	})
	_ = ctx.Err()
}

func rootWithoutCtx() context.Context {
	// No ctx parameter anywhere: minting a root is legitimate.
	return context.Background()
}

func drainUnchecked(ctx context.Context, ch <-chan int) int {
	total := 0
	if ctx.Err() != nil {
		return 0
	}
	for v := range ch { // want sinkctx "channel-drain loop never consults ctx"
		total += v
	}
	return total
}

func drainChecked(ctx context.Context, ch <-chan int) int {
	total := 0
	for v := range ch {
		if ctx.Err() != nil {
			return total
		}
		total += v
	}
	return total
}

func selectDrain(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

func drainNoCtx(ch <-chan int) int {
	// No ctx in scope: nothing to consult, nothing to flag.
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

func allowedFreshRoot(ctx context.Context, f func(context.Context) error) error {
	_ = ctx.Err()
	//hbvet:allow sinkctx testdata: detached background work by design
	return f(context.Background())
}
