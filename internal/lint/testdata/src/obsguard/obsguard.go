// Package obsguard exercises the obsguard analyzer: VisitTrace
// recording calls (Span, Instant, Reset, Snapshot) must sit lexically
// inside an if body whose condition checks Enabled() on a VisitTrace,
// so the disabled path evaluates no argument expressions. Enabled()
// itself is the guard and is always legal; the //hbvet:allow escape
// covers deliberate unguarded uses (e.g. test helpers).
package obsguard

import (
	"time"

	"headerbid/internal/obs"
)

type widget struct {
	trace *obs.VisitTrace
}

func (w *widget) vt() *obs.VisitTrace { return w.trace }

// unguardedSpan pays Span's argument construction on every call,
// traced or not: reported.
func (w *widget) unguardedSpan(t0, t1 time.Time) {
	w.trace.Span(obs.TrackPage, "visit", t0, t1, obs.SpanOpts{}) // want obsguard "outside an Enabled"
}

// unguardedInstant through a helper accessor: still reported.
func (w *widget) unguardedInstant(now time.Time) {
	w.vt().Instant(obs.TrackPage, "quarantine", now, "boom") // want obsguard "outside an Enabled"
}

// wrongGuard checks something other than Enabled: reported.
func (w *widget) wrongGuard(now time.Time) {
	if w.trace != nil {
		w.trace.Instant(obs.TrackAuction, "start", now, "") // want obsguard "outside an Enabled"
	}
}

// guarded is the sanctioned pattern: clean.
func (w *widget) guarded(t0, t1 time.Time) {
	if vt := w.vt(); vt.Enabled() {
		vt.Span(obs.TrackAuction, "auction", t0, t1, obs.SpanOpts{Detail: "ok"})
		vt.Instant(obs.TrackPage, "mark", t1, "")
	}
}

// guardedCompound accepts Enabled anywhere in the condition: clean.
func (w *widget) guardedCompound(traced bool, t0, t1 time.Time) {
	if traced && w.trace.Enabled() {
		w.trace.Span(obs.TrackPage, "visit", t0, t1, obs.SpanOpts{})
	}
}

// guardedNested covers statements nested deeper in the guard body: clean.
func (w *widget) guardedNested(codes []string, now time.Time) {
	if vt := w.vt(); vt.Enabled() {
		for _, code := range codes {
			if code != "" {
				vt.Instant(obs.TrackAdServer, "slot", now, code)
			}
		}
	}
}

// bareEnabled: the guard call itself needs no guard.
func (w *widget) bareEnabled() bool {
	return w.trace.Enabled()
}

// allowed carries the mandatory justification, so it is clean.
func (w *widget) allowed() {
	//hbvet:allow obsguard test fixture resets the recorder unconditionally
	w.trace.Reset()
}

// lookalike has a same-named method on a different type: no report.
type lookalike struct{}

func (lookalike) Span(a, b string) {}

func useLookalike(l lookalike) {
	l.Span("x", "y")
}
