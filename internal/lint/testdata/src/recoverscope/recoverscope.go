// Package recoverscope exercises the recoverscope analyzer: recover()
// anywhere outside the sanctioned crawler quarantine boundary, bare
// panic() in a panic-scoped package (the harness loads this package at
// a synthetic hot-path-equivalent import path), and the //hbvet:allow
// escape for justified panics.
package recoverscope

// swallow hides a panic instead of letting the quarantine label it.
func swallow() {
	defer func() {
		if r := recover(); r != nil { // want recoverscope "sanctioned quarantine boundary"
			_ = r
		}
	}()
}

// quarantineVisit has the sanctioned function's name but lives in the
// wrong package: still reported.
func quarantineVisit() {
	defer func() {
		_ = recover() // want recoverscope "sanctioned quarantine boundary"
	}()
}

// hotPanic is a bare data-dependent panic on the (synthetic) hot path.
func hotPanic(n int) {
	if n < 0 {
		panic("negative") // want recoverscope "hot path"
	}
}

// allowedPanic carries the mandatory justification, so it is clean.
func allowedPanic(n int) {
	if n < 0 {
		//hbvet:allow recoverscope API-misuse precondition; caller bug, not visit data
		panic("negative")
	}
}

// shadowed calls a user-defined recover, not the builtin: no report.
func shadowed() {
	recover := func() any { return nil }
	_ = recover()
}

// doRecover is recover() hidden behind a helper (useless at runtime,
// since it is not called directly by a deferred function — but the
// rule is lexical and still flags it).
func doRecover() {
	_ = recover() // want recoverscope "sanctioned quarantine boundary"
}
