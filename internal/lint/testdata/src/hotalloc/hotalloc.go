// Package hotalloc exercises the hot-path allocation analyzer: fmt
// formatting calls, per-iteration capturing closures, and
// encoding/json marshalling.
package hotalloc

import (
	"encoding/json"
	"fmt"
	"strconv"
)

func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want hotalloc "fmt.Sprintf on the hot path"
}

func wrap(err error) error {
	return fmt.Errorf("wrapped: %w", err) // want hotalloc "fmt.Errorf on the hot path"
}

func fastPath(n int) string {
	// strconv builders are the sanctioned replacement.
	return "n=" + strconv.Itoa(n)
}

func closurePerIteration(xs []int) func() int {
	var last func() int
	for _, x := range xs {
		x := x
		last = func() int { return x } // want hotalloc "capturing closure inside a loop"
	}
	return last
}

func nonCapturingInLoop(xs []int) func() int {
	var f func() int
	for range xs {
		// Captures nothing: materialized once by the compiler.
		f = func() int { return 0 }
	}
	return f
}

func hoistedClosure(xs []int) int {
	total := 0
	add := func(n int) { total += n }
	for _, x := range xs {
		add(x)
	}
	return total
}

func allowedCold(err error) error {
	return fmt.Errorf("cold: %w", err) //hbvet:allow hotalloc testdata: cold error path stays suppressed
}

func allowedSetupLoop(hosts []string, handle func(string, func() string)) {
	for _, h := range hosts {
		h := h
		//hbvet:allow hotalloc testdata: one-time setup loop stays suppressed
		handle(h, func() string { return h })
	}
}

type shape struct {
	ID string `json:"id"`
}

func reflectEncode(s shape) []byte {
	b, _ := json.Marshal(s) // want hotalloc "json.Marshal on the hot path"
	return b
}

func reflectDecode(b []byte) shape {
	var s shape
	_ = json.Unmarshal(b, &s) // want hotalloc "json.Unmarshal on the hot path"
	return s
}

func allowedFallbackDecode(b []byte) shape {
	var s shape
	//hbvet:allow hotalloc testdata: sanctioned codec fallback stays suppressed
	_ = json.Unmarshal(b, &s)
	return s
}

func validOnly(b []byte) bool {
	// json.Valid does not reflect; only Marshal/Unmarshal are banned.
	return json.Valid(b)
}
