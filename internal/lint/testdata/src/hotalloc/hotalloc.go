// Package hotalloc exercises the hot-path allocation analyzer: fmt
// formatting calls and per-iteration capturing closures.
package hotalloc

import (
	"fmt"
	"strconv"
)

func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want hotalloc "fmt.Sprintf on the hot path"
}

func wrap(err error) error {
	return fmt.Errorf("wrapped: %w", err) // want hotalloc "fmt.Errorf on the hot path"
}

func fastPath(n int) string {
	// strconv builders are the sanctioned replacement.
	return "n=" + strconv.Itoa(n)
}

func closurePerIteration(xs []int) func() int {
	var last func() int
	for _, x := range xs {
		x := x
		last = func() int { return x } // want hotalloc "capturing closure inside a loop"
	}
	return last
}

func nonCapturingInLoop(xs []int) func() int {
	var f func() int
	for range xs {
		// Captures nothing: materialized once by the compiler.
		f = func() int { return 0 }
	}
	return f
}

func hoistedClosure(xs []int) int {
	total := 0
	add := func(n int) { total += n }
	for _, x := range xs {
		add(x)
	}
	return total
}

func allowedCold(err error) error {
	return fmt.Errorf("cold: %w", err) //hbvet:allow hotalloc testdata: cold error path stays suppressed
}

func allowedSetupLoop(hosts []string, handle func(string, func() string)) {
	for _, h := range hosts {
		h := h
		//hbvet:allow hotalloc testdata: one-time setup loop stays suppressed
		handle(h, func() string { return h })
	}
}
