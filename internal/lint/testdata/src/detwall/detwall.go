// Package detwall exercises the determinism-wall analyzer: wall-clock
// reads, wall timers, global math/rand, and map-iteration order leaks.
package detwall

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want detwall "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want detwall "time.Sleep reads the wall clock"
	return time.Since(start)     // want detwall "time.Since reads the wall clock"
}

func wallTimer(fn func()) *time.Timer {
	return time.AfterFunc(time.Second, fn) // want detwall "time.AfterFunc reads the wall clock"
}

func pureTimeArithmetic(d time.Duration) time.Time {
	// Deterministic time arithmetic stays legal.
	return time.Date(2019, time.March, 1, 0, 0, 0, 0, time.UTC).Add(d)
}

func globalRand() int {
	return rand.Intn(10) // want detwall "math/rand.Intn:"
}

func seededRand(seed int64) int64 {
	// Even a locally seeded source bypasses internal/rng; every
	// math/rand mention is flagged, methods included.
	r := rand.New(rand.NewSource(seed)) // want detwall "math/rand.New:" detwall "math/rand.NewSource:"
	return r.Int63()                    // want detwall "math/rand.Int63:"
}

func leakKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want detwall "publishes map iteration order"
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func perKeyAppend(src, dst map[string][]int) {
	for k, vs := range src {
		// Indexed appends keyed by the range variable are per-key and
		// order-free.
		dst[k] = append(dst[k], vs...)
	}
}

func localAccumulator(m map[string][]string) int {
	n := 0
	for _, vs := range m {
		var local []string
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func printUnsorted(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want detwall "emits in map iteration order"
	}
}

func writeUnsorted(b *strings.Builder, m map[string]int) {
	for k := range m {
		b.WriteString(k) // want detwall "emits in map iteration order"
	}
}

func allowedTrailing() time.Time {
	return time.Now() //hbvet:allow detwall testdata: trailing directive must silence this line
}

func allowedStandalone() time.Time {
	//hbvet:allow detwall testdata: standalone directive must silence the next line
	return time.Now()
}
