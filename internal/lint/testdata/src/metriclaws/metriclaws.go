// Package metriclaws exercises the metric-law analyzer against
// implementations of the real analysis.Metric interface.
package metriclaws

import (
	"headerbid/internal/analysis"
	"headerbid/internal/dataset"
)

// badMetric breaks the receiver laws: value-receiver Add/Merge mutate a
// copy, and NewShard/Snapshot hand out the accumulator itself.
type badMetric struct {
	counts map[string]int
}

func (m badMetric) Name() string { return "bad" }

func (m badMetric) Add(r *dataset.SiteRecord) { // want metriclaws "value receiver"
	_ = r
	m.counts["visit"]++
}

func (m badMetric) Merge(other analysis.Metric) { // want metriclaws "value receiver"
	for k, v := range other.(badMetric).counts {
		m.counts[k] += v
	}
}

func (m badMetric) NewShard() analysis.Metric {
	return m // want metriclaws "returns the receiver"
}

func (m badMetric) Snapshot() any {
	return m // want metriclaws "returns the receiver"
}

// aliasShard gets the receivers right but aliases shard state.
type aliasShard struct{ n int }

func (m *aliasShard) Name() string              { return "alias" }
func (m *aliasShard) Add(r *dataset.SiteRecord) { m.n++ }
func (m *aliasShard) Merge(o analysis.Metric)   { m.n += o.(*aliasShard).n }
func (m *aliasShard) Snapshot() any             { return m.n }
func (m *aliasShard) NewShard() analysis.Metric {
	return m // want metriclaws "returns the receiver"
}

// leakyMetric reports correctly shaped shards but leaks its live map.
type leakyMetric struct {
	counts map[string]int
}

func (m *leakyMetric) Name() string              { return "leaky" }
func (m *leakyMetric) Add(r *dataset.SiteRecord) { m.counts["visit"]++ }
func (m *leakyMetric) Merge(o analysis.Metric) {
	for k, v := range o.(*leakyMetric).counts {
		m.counts[k] += v
	}
}
func (m *leakyMetric) NewShard() analysis.Metric {
	return &leakyMetric{counts: make(map[string]int)}
}
func (m *leakyMetric) Snapshot() any {
	return m.counts // want metriclaws "internal field counts by reference"
}

// goodMetric satisfies every law: pointer receivers, fresh shards, a
// copied snapshot.
type goodMetric struct {
	counts map[string]int
}

func (m *goodMetric) Name() string              { return "good" }
func (m *goodMetric) Add(r *dataset.SiteRecord) { m.counts["visit"]++ }
func (m *goodMetric) Merge(o analysis.Metric) {
	for k, v := range o.(*goodMetric).counts {
		m.counts[k] += v
	}
}
func (m *goodMetric) NewShard() analysis.Metric {
	return &goodMetric{counts: make(map[string]int)}
}
func (m *goodMetric) Snapshot() any {
	out := make(map[string]int, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

// composite mirrors report.Figures: Snapshot deliberately hands back
// the live accumulator and says so with a directive.
type composite struct{ n int }

func (c *composite) Name() string              { return "composite" }
func (c *composite) Add(r *dataset.SiteRecord) { c.n++ }
func (c *composite) Merge(o analysis.Metric)   { c.n += o.(*composite).n }
func (c *composite) NewShard() analysis.Metric { return &composite{} }
func (c *composite) Snapshot() any {
	return c //hbvet:allow metriclaws testdata: composite view returned deliberately
}

// notAMetric does not implement Metric; its value receiver is nobody's
// business.
type notAMetric struct{ n int }

func (x notAMetric) Add(v int) notAMetric { x.n += v; return x }
