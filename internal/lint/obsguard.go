package lint

import (
	"go/ast"
	"go/types"
)

// Obsguard enforces the observability layer's zero-overhead-when-disabled
// contract: every recording call on an obs.VisitTrace — Span, Instant,
// Reset, Snapshot, anything but the Enabled guard itself — must sit
// lexically inside the body of an if statement whose condition checks
// Enabled() on a VisitTrace. The guard is what makes untraced visits
// free: with the call (including all its argument expressions) inside
// the guarded block, the disabled path evaluates nothing and allocates
// nothing, which is how the bench gate's ALLOCS_CEILING holds with
// tracing compiled in. An unguarded call site pays argument construction
// on every visit whether traced or not — exactly the regression this
// rule exists to catch at compile time instead of in the bench gate.
var Obsguard = &Analyzer{
	Name: "obsguard",
	Doc: "require obs.VisitTrace recording calls to be lexically guarded by " +
		"an Enabled() check so the disabled path stays allocation-free",
	// The obs package itself implements the recorder; its methods and
	// tests legitimately touch the un-guarded internals.
	Applies: func(pkgPath string) bool { return pkgPath != obsPkgPath },
	Run:     runObsguard,
}

// obsPkgPath is the import path of the observability package whose
// VisitTrace type the rule polices.
const obsPkgPath = "headerbid/internal/obs"

func runObsguard(pass *Pass) error {
	pass.funcDecls(func(fd *ast.FuncDecl) {
		// Pass 1: collect the body spans of every if statement whose
		// condition contains an Enabled() check on a VisitTrace.
		type span struct{ lo, hi int }
		var guarded []span
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			hasGuard := false
			ast.Inspect(ifStmt.Cond, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if name, ok := visitTraceMethod(pass.Info, call); ok && name == "Enabled" {
						hasGuard = true
					}
				}
				return !hasGuard
			})
			if hasGuard {
				guarded = append(guarded, span{int(ifStmt.Body.Pos()), int(ifStmt.Body.End())})
			}
			return true
		})

		// Pass 2: every other VisitTrace method call must land inside one
		// of those bodies.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := visitTraceMethod(pass.Info, call)
			if !ok || name == "Enabled" {
				return true
			}
			pos := int(call.Pos())
			for _, g := range guarded {
				if g.lo <= pos && pos < g.hi {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"obs.VisitTrace.%s outside an Enabled() guard: wrap the call in "+
					"`if vt := ...; vt.Enabled() { ... }` so untraced visits evaluate "+
					"no argument expressions and allocate nothing", name)
			return true
		})
	})
	return nil
}

// visitTraceMethod resolves a call to a method on obs.VisitTrace,
// returning the method name. The receiver may be the pointer or value
// form; anything else (including same-named methods on other types)
// reports false.
func visitTraceMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath || obj.Name() != "VisitTrace" {
		return "", false
	}
	return fn.Name(), true
}
