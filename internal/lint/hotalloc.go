package lint

import (
	"go/ast"
	"go/types"
)

// Hotalloc guards the allocation discipline of the crawl hot path: the
// packages executed on every simulated visit, whose allocation budget
// is CI-gated by the allocs/visit ceiling in scripts/bench_gate.sh.
// PR 2–3 removed fmt formatting (reflection + boxing on every call) and
// per-call closures from these packages; this analyzer keeps them out.
//
// Two rules:
//
//   - no fmt formatting calls (Sprintf/Sprint/Fprintf/Errorf/Appendf):
//     protocol IDs, prices and URLs are built with strconv fast paths
//     that are byte-pinned to the old fmt output. Genuinely cold spots
//     (error construction on failure paths, String methods for logs)
//     carry //hbvet:allow hotalloc annotations saying so.
//   - no capturing closures inside loops: a func literal that captures
//     variables allocates on every iteration. Hoist it, use the
//     closure-free scheduler capabilities (clock.AtCall/AfterCall), or
//     annotate the one-time setup loops.
//   - no encoding/json Marshal/Unmarshal: reflection-based encoding of
//     the fixed OpenRTB shapes costs dozens of allocations per bid
//     exchange. The hand-rolled codec in internal/rtb is byte-identical
//     to encoding/json for these shapes; the sanctioned fallbacks (the
//     codec's own escape hatches for foreign bodies) carry
//     //hbvet:allow hotalloc annotations.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid fmt formatting calls, per-iteration capturing closures, " +
		"and encoding/json marshalling in the hot-path packages covered " +
		"by the allocs/visit bench gate",
	Applies: func(pkgPath string) bool { return hotPathPackages[pkgPath] },
	Run:     runHotalloc,
}

// hotPathPackages are the packages on the per-visit execution path,
// matching the surface the allocs/visit ceiling measures.
var hotPathPackages = map[string]bool{
	"headerbid/internal/pagert":  true,
	"headerbid/internal/webreq":  true,
	"headerbid/internal/hb":      true,
	"headerbid/internal/urlkit":  true,
	"headerbid/internal/clock":   true,
	"headerbid/internal/rtb":     true,
	"headerbid/internal/prebid":  true,
	"headerbid/internal/pubfood": true,
	"headerbid/internal/sitegen": true,
}

// fmtFormatFuncs are the reflection-based formatting entry points
// banned on the hot path.
var fmtFormatFuncs = map[string]bool{
	"Sprintf": true,
	"Sprint":  true,
	"Fprintf": true,
	"Errorf":  true,
	"Appendf": true,
}

// jsonCodecFuncs are the reflection-based encoding/json entry points
// banned on the hot path (the rtb codec replaces them for the OpenRTB
// shapes).
var jsonCodecFuncs = map[string]bool{
	"Marshal":       true,
	"MarshalIndent": true,
	"Unmarshal":     true,
}

func runHotalloc(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				switch pkgFuncUse(pass.Info, sel.Sel) {
				case "fmt":
					if fmtFormatFuncs[sel.Sel.Name] {
						pass.Reportf(sel.Pos(),
							"fmt.%s on the hot path allocates via reflection: use strconv builders (or annotate a genuinely cold path)",
							sel.Sel.Name)
					}
				case "encoding/json":
					if jsonCodecFuncs[sel.Sel.Name] {
						pass.Reportf(sel.Pos(),
							"json.%s on the hot path reflects over the value: use the rtb codec (or annotate a sanctioned fallback)",
							sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	pass.funcDecls(func(fd *ast.FuncDecl) {
		checkLoopClosures(pass, fd)
	})
	return nil
}

// checkLoopClosures flags capturing func literals inside loop bodies:
// each iteration allocates a fresh closure.
func checkLoopClosures(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		flagClosuresIn(pass, body)
		return true
	})
}

// flagClosuresIn reports the outermost capturing func literals in body.
// Non-capturing literals cost nothing per iteration (the compiler
// materializes them once) and are descended into, since a capturing
// literal nested inside still allocates when the outer one runs.
func flagClosuresIn(pass *Pass, body *ast.BlockStmt) {
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				// Inner loops get their own pass from checkLoopClosures.
				return false
			case *ast.FuncLit:
				if capturesLocals(pass.Info, n) {
					pass.Reportf(n.Pos(),
						"capturing closure inside a loop allocates per iteration: hoist it or pass state explicitly")
					return false
				}
				return true
			}
			return true
		})
	}
}

// capturesLocals reports whether lit references any function-local
// variable declared outside the literal itself (free variables force a
// heap-allocated closure; package-level references do not).
func capturesLocals(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return true
		}
		// Package-level variables are not captured; neither are
		// variables declared inside the literal (params, locals).
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		// Struct fields reached through a captured receiver show up as
		// field selections, not scope-level vars; skip field objects.
		if v.IsField() {
			return true
		}
		captures = true
		return false
	})
	return captures
}
