package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Metriclaws enforces the structural half of the analysis.Metric
// contract — the merge laws that make per-worker sharded accumulation
// invisible in the output. The metric-law tests prove the algebra
// (commutativity, associativity, streaming-vs-batch equality) at run
// time; this analyzer catches the implementation shapes that break it
// before a test ever runs:
//
//   - Add and Merge declared with a value receiver mutate a copy: every
//     record folded into a shard would be silently dropped.
//   - NewShard returning the receiver aliases shard state across
//     goroutines: workers would race on one accumulator.
//   - Snapshot returning the receiver, or a receiver field of map or
//     slice type, hands internal accumulation state to the caller by
//     reference: a later Add/Merge mutates a result already reported.
//
// The checks are declaration-local: promoted methods are checked where
// they are declared, and Snapshot bodies that build results through
// helper calls are trusted (the metric-law tests cover the rest).
var Metriclaws = &Analyzer{
	Name: "metriclaws",
	Doc: "Metric implementations must use pointer receivers for " +
		"Add/Merge, return a fresh accumulator from NewShard, and not " +
		"leak internal maps/slices from Snapshot",
	Run: runMetriclaws,
}

const analysisPkgPath = "headerbid/internal/analysis"

// metricInterface locates the analysis.Metric interface as seen by the
// package under analysis: the local definition inside internal/analysis
// itself, or the imported one everywhere else. nil means the package
// cannot define metrics.
func metricInterface(pkg *types.Package) *types.Interface {
	scope := pkg.Scope()
	if pkg.Path() != analysisPkgPath {
		scope = nil
		for _, imp := range pkg.Imports() {
			if imp.Path() == analysisPkgPath {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil
		}
	}
	obj, ok := scope.Lookup("Metric").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}

func runMetriclaws(pass *Pass) error {
	iface := metricInterface(pass.Pkg)
	if iface == nil {
		return nil
	}

	// Named types in this package whose pointer (or value) type
	// implements Metric.
	implementers := make(map[string]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			implementers[name] = true
		}
	}
	if len(implementers) == 0 {
		return nil
	}

	pass.funcDecls(func(fd *ast.FuncDecl) {
		recvName, ptr := receiverType(fd)
		if recvName == "" || !implementers[recvName] {
			return
		}
		switch fd.Name.Name {
		case "Add", "Merge":
			if !ptr {
				pass.Reportf(fd.Name.Pos(),
					"(%s).%s has a value receiver: accumulation mutates a copy and every folded record is lost; use a pointer receiver",
					recvName, fd.Name.Name)
			}
		case "NewShard":
			checkNewShard(pass, fd, recvName)
		case "Snapshot":
			checkSnapshot(pass, fd, recvName)
		}
	})
	return nil
}

// receiverType returns the base type name of a method's receiver and
// whether the receiver is a pointer.
func receiverType(fd *ast.FuncDecl) (name string, ptr bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = star.X
	}
	// Generic receivers (T[P]) index the base name.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, ptr
	}
	return "", ptr
}

// returnStmts walks the return statements belonging to fd itself
// (returns inside nested function literals are someone else's).
func returnStmts(fd *ast.FuncDecl, fn func(*ast.ReturnStmt)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			fn(n)
		}
		return true
	})
}

// checkNewShard flags NewShard bodies that return the receiver instead
// of a fresh accumulator.
func checkNewShard(pass *Pass, fd *ast.FuncDecl, recvName string) {
	recv := receiverIdent(fd)
	if recv == nil {
		return
	}
	recvObj := pass.Info.Defs[recv]
	returnStmts(fd, func(ret *ast.ReturnStmt) {
		for _, res := range ret.Results {
			expr := ast.Unparen(res)
			// Unwrap a unary & (value-receiver metrics returning
			// &themselves still alias).
			if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
				expr = ast.Unparen(u.X)
			}
			if id, ok := expr.(*ast.Ident); ok && recvObj != nil && pass.Info.Uses[id] == recvObj {
				pass.Reportf(res.Pos(),
					"(%s).NewShard returns the receiver: shards must be fresh accumulators, or workers race on shared state",
					recvName)
			}
		}
	})
}

// checkSnapshot flags Snapshot bodies that return the receiver or a
// receiver field of map/slice type (directly or as a composite-literal
// element) — internal accumulation state escaping by reference.
func checkSnapshot(pass *Pass, fd *ast.FuncDecl, recvName string) {
	recv := receiverIdent(fd)
	if recv == nil {
		return
	}
	recvObj := pass.Info.Defs[recv]
	if recvObj == nil {
		return
	}
	flag := func(expr ast.Expr) {
		expr = ast.Unparen(expr)
		if id, ok := expr.(*ast.Ident); ok && pass.Info.Uses[id] == recvObj {
			pass.Reportf(expr.Pos(),
				"(%s).Snapshot returns the receiver: the caller holds live accumulator state; return a copied result",
				recvName)
			return
		}
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recvObj {
			return
		}
		if t := typeOf(pass.Info, sel); isMapType(t) || isSliceType(t) {
			pass.Reportf(expr.Pos(),
				"(%s).Snapshot returns internal field %s by reference: later Add/Merge calls mutate the reported result; clone it",
				recvName, sel.Sel.Name)
		}
	}
	returnStmts(fd, func(ret *ast.ReturnStmt) {
		for _, res := range ret.Results {
			res = ast.Unparen(res)
			if lit, ok := res.(*ast.CompositeLit); ok {
				for _, elt := range lit.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						flag(kv.Value)
					} else {
						flag(elt)
					}
				}
				continue
			}
			flag(res)
		}
	})
}

// isSliceType reports whether t's core type is a slice.
func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
