// Package lint is hbvet's analyzer suite: repo-specific static checks
// that turn this codebase's load-bearing conventions — virtual clock
// only, seeded RNG only, no map-iteration-order leaks, fmt-free hot
// paths, lawful mergeable metrics, ctx-aware streaming — into
// compile-time diagnostics instead of late golden-test failures.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Reportf, testdata-driven tests) but is built on the
// standard library alone: the container this repo builds in has no
// module proxy access, so hbvet typechecks packages itself from `go
// list -export` output (see load.go) rather than importing x/tools.
//
// # Suppression
//
// A diagnostic is suppressed by a directive comment
//
//	//hbvet:allow <rule> <reason>
//
// where <rule> is an analyzer name (detwall, hotalloc, metriclaws,
// sinkctx, recoverscope, obsguard) and <reason> is free text explaining why the violation is
// intentional — the reason is mandatory; a bare allow is itself
// reported. The directive covers its own line (trailing comment) and
// the first line after its comment group (standalone comment above the
// offending statement). Livenet and cmd code legitimately touch the
// wall clock; the directive is how they say so in place, with the
// justification kept next to the code it excuses.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named rule set. It mirrors the x/tools analysis
// API: Run inspects a fully typechecked package through its Pass and
// reports diagnostics.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //hbvet:allow
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Applies reports whether the analyzer's rules apply to the package
	// with the given import path. A nil Applies means every package.
	// The testdata harness bypasses this filter and calls Run directly.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one typechecked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path under analysis (Pkg.Path(), kept
	// separately so synthetic testdata packages can carry real paths).
	PkgPath string

	supp  *suppressions
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an //hbvet:allow directive
// for this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.supp != nil && p.supp.covers(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every registered analyzer, in stable order. cmd/hbvet
// runs exactly this set; the driver's meta-test asserts no analyzer
// declared in this package is missing from it.
func All() []*Analyzer {
	return []*Analyzer{Detwall, Hotalloc, Metriclaws, Sinkctx, Recoverscope, Obsguard}
}

// knownRule reports whether name names a registered analyzer (used to
// reject misspelled //hbvet:allow directives).
func knownRule(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

const allowPrefix = "//hbvet:allow"

// suppressions indexes //hbvet:allow directives by (rule, file, line).
type suppressions struct {
	// covered[rule][file] is the set of suppressed lines.
	covered map[string]map[string]map[int]bool
	// malformed collects directive-syntax diagnostics (missing rule,
	// missing reason, unknown rule) found while scanning.
	malformed []Diagnostic
}

// covers reports whether a directive for rule covers file:line.
func (s *suppressions) covers(rule, file string, line int) bool {
	return s.covered[rule][file][line]
}

// scanSuppressions walks every comment in files and indexes the allow
// directives. A directive covers the lines of its own comment group
// plus the first line after the group, so both trailing and standalone
// placements work:
//
//	x := time.Now() //hbvet:allow detwall wall-clock elapsed for logs
//
//	//hbvet:allow detwall wall-clock elapsed for logs
//	x := time.Now()
func scanSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{covered: make(map[string]map[string]map[int]bool)}
	for _, f := range files {
		for _, group := range f.Comments {
			groupStart := fset.Position(group.Pos()).Line
			groupEnd := fset.Position(group.End()).Line
			for _, c := range group.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "hbvet",
						Message:  "malformed directive: want //hbvet:allow <rule> <reason>",
					})
					continue
				case !knownRule(fields[0]):
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "hbvet",
						Message:  fmt.Sprintf("directive names unknown rule %q", fields[0]),
					})
					continue
				case len(fields) < 2:
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "hbvet",
						Message:  fmt.Sprintf("directive for %q has no reason: a justification is mandatory", fields[0]),
					})
					continue
				}
				rule := fields[0]
				byFile := s.covered[rule]
				if byFile == nil {
					byFile = make(map[string]map[int]bool)
					s.covered[rule] = byFile
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					byFile[pos.Filename] = lines
				}
				for l := groupStart; l <= groupEnd+1; l++ {
					lines[l] = true
				}
			}
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Running
// ---------------------------------------------------------------------------

// RunAnalyzers applies each analyzer to each package (honoring Applies
// scopes and //hbvet:allow directives) and returns every diagnostic,
// sorted by position. Malformed directives in any package are reported
// once per package under the pseudo-rule "hbvet".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		supp := scanSuppressions(pkg.Fset, pkg.Files)
		diags = append(diags, supp.malformed...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				supp:     supp,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---------------------------------------------------------------------------
// Shared type-resolution helpers
// ---------------------------------------------------------------------------

// pkgFuncUse resolves an identifier use to a package-level function
// object, returning the defining package's import path ("" if the
// identifier is not a use of a package-level function).
func pkgFuncUse(info *types.Info, id *ast.Ident) string {
	obj, ok := info.Uses[id]
	if !ok {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	// Only package-level functions (methods have receivers).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return fn.Pkg().Path()
}

// useFromPackage reports whether the identifier resolves to any object
// (func, var, const, type) exported by the package at path.
func useFromPackage(info *types.Info, id *ast.Ident, path string) bool {
	obj, ok := info.Uses[id]
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == path
}

// typeOf returns the static type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isChanType reports whether t's core type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// objUsedIn reports whether any identifier inside node resolves to obj.
func objUsedIn(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// receiverIdent returns the receiver's identifier of a method
// declaration, or nil for anonymous ("_") or missing receivers.
func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// funcDecls walks every function declaration (with a body) in the
// pass's files.
func (p *Pass) funcDecls(fn func(*ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
