package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sinkctx enforces cancellation hygiene in the streaming pipeline: a
// ctx handed to Run/CrawlStream must actually govern the work. The
// pipeline's contract (CrawlStream returns ctx.Err() promptly, sinks
// never wedge a cancelled run) holds only if every function on the
// path propagates and consults its context.
//
// Three rules:
//
//   - a named context.Context parameter must be used somewhere in the
//     function body (pass it on, derive from it, or check
//     Done()/Err()); name it _ if the signature demands a ctx the
//     implementation genuinely cannot honor;
//   - context.Background()/TODO() must not be called where a ctx
//     parameter is in scope: minting a fresh root detaches the callee
//     from the caller's cancellation;
//   - a loop that receives from a channel (range over a channel, or a
//     condition-less for containing receive/select) inside a
//     ctx-bearing function must consult a context in its body,
//     otherwise cancellation cannot interrupt the drain.
var Sinkctx = &Analyzer{
	Name: "sinkctx",
	Doc: "streaming loops and Sink plumbing must propagate and check " +
		"ctx: no ignored ctx parameters, no context.Background() where " +
		"a ctx is in scope, no channel-drain loops that never consult ctx",
	Run: runSinkctx,
}

func runSinkctx(pass *Pass) error {
	for _, file := range pass.Files {
		// Walk function declarations and literals, tracking whether a
		// ctx parameter is in scope for the Background/TODO rule.
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFuncCtx(pass, fd.Type, fd.Body, nil)
			return true
		})
	}
	return nil
}

// ctxParams returns the named context.Context parameter objects of a
// function type.
func ctxParams(pass *Pass, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkFuncCtx applies all three rules to one function (declaration or
// literal). enclosing carries ctx parameters of enclosing functions, so
// nested literals inherit "a ctx is in scope".
func checkFuncCtx(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, enclosing []types.Object) {
	own := ctxParams(pass, ft)

	// Rule 1: every named ctx parameter is used.
	for _, obj := range own {
		if !objUsedIn(pass.Info, body, obj) {
			pass.Reportf(obj.Pos(),
				"context parameter %s is never used: propagate it or check Done()/Err() (rename to _ only if the signature forces an unhonorable ctx)",
				obj.Name())
		}
	}

	inScope := append(append([]types.Object{}, enclosing...), own...)

	// Walk this function's own statements; recurse explicitly into
	// nested literals so they see the extended scope.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncCtx(pass, n.Type, n.Body, inScope)
			return false
		case *ast.CallExpr:
			checkFreshRoot(pass, n, inScope)
		case *ast.RangeStmt:
			if isChanType(typeOf(pass.Info, n.X)) {
				checkDrainLoop(pass, n.Body, n.Pos(), inScope)
			}
		case *ast.ForStmt:
			if n.Cond == nil && containsChannelOp(pass, n.Body) {
				checkDrainLoop(pass, n.Body, n.Pos(), inScope)
			}
		}
		return true
	})
}

// checkFreshRoot flags context.Background()/TODO() calls made while a
// ctx parameter is in scope.
func checkFreshRoot(pass *Pass, call *ast.CallExpr, inScope []types.Object) {
	if len(inScope) == 0 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pkgFuncUse(pass.Info, sel.Sel) != "context" {
		return
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		pass.Reportf(call.Pos(),
			"context.%s() called with ctx in scope: the new root ignores the caller's cancellation; propagate the ctx parameter",
			sel.Sel.Name)
	}
}

// checkDrainLoop requires a channel-receiving loop in a ctx-bearing
// function to consult some context in its body — the in-scope parameter
// or a context derived locally (ctx.Err(), ctx.Done() in a select, a
// call taking the ctx, ...).
func checkDrainLoop(pass *Pass, body *ast.BlockStmt, loopPos token.Pos, inScope []types.Object) {
	if len(inScope) == 0 {
		return
	}
	if mentionsContext(pass, body) {
		return
	}
	pass.Reportf(loopPos,
		"channel-drain loop never consults ctx: cancellation cannot interrupt it; check ctx.Err() or select on ctx.Done()")
}

// mentionsContext reports whether any identifier of context.Context
// type appears inside node.
func mentionsContext(pass *Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := pass.Info.Uses[id]; ok && isContextType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsChannelOp reports whether body performs any channel operation
// (send, receive, select, or range over a channel) outside nested
// function literals.
func containsChannelOp(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isChanType(typeOf(pass.Info, n.X)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
