// Package report renders the analysis results as the text tables and
// ASCII series the benchmark harness and cmd/hbreport print — the same
// rows the paper's tables and figures report, in a diffable plain form.
package report

import (
	"fmt"
	"io"
	"strings"

	"headerbid/internal/analysis"
	"headerbid/internal/dataset"
	"headerbid/internal/hb"
	"headerbid/internal/partners"
	"headerbid/internal/stats"
)

// Writer renders report sections to an io.Writer.
type Writer struct {
	W io.Writer
}

// New creates a report writer.
func New(w io.Writer) *Writer { return &Writer{W: w} }

func (r *Writer) printf(format string, args ...any) {
	fmt.Fprintf(r.W, format, args...)
}

// Section prints a section header.
func (r *Writer) Section(title string) {
	r.printf("\n== %s ==\n", title)
}

// Table1 renders the dataset summary.
func (r *Writer) Table1(s dataset.Summary) {
	r.Section("Table 1: collected data summary")
	r.printf("%-36s %d\n", "# of websites crawled", s.SitesCrawled)
	r.printf("%-36s %d (%.2f%%)\n", "# of websites with HB", s.SitesWithHB, 100*s.AdoptionRate())
	r.printf("%-36s %d\n", "# of auctions detected", s.Auctions)
	r.printf("%-36s %d\n", "# of bids detected", s.Bids)
	r.printf("%-36s %d\n", "# of competing Demand Partners", s.DemandPartners)
	r.printf("%-36s %d\n", "# days of crawling", s.CrawlDays)
}

// AdoptionBands renders the §3.2 rank-band adoption rates.
func (r *Writer) AdoptionBands(bands []analysis.RankBandAdoption) {
	r.Section("HB adoption by Alexa rank band (§3.2)")
	for _, b := range bands {
		r.printf("rank %6d-%-6d  sites=%-6d hb=%-5d adoption=%.2f%%\n",
			b.Lo, b.Hi, b.Sites, b.HBSites, 100*b.Adoption)
	}
}

// FacetBreakdown renders §4.6.
func (r *Writer) FacetBreakdown(shares []analysis.FacetShare) {
	r.Section("Facet breakdown (§4.6)")
	for _, s := range shares {
		r.printf("%-16s %6d sites  %6.2f%%\n", s.Facet, s.Sites, 100*s.Share)
	}
}

// Figure4 renders the adoption-over-years study.
func (r *Writer) Figure4(years []analysis.YearAdoption) {
	r.Section("Figure 4: HB adoption per year (top-1k lists, static analysis)")
	for _, y := range years {
		r.printf("%d  detected=%5.1f%%  (ground truth %5.1f%%)  %s\n",
			y.Year, 100*y.Rate, 100*y.TrueRate, bar(y.Rate, 40))
	}
}

// Figure8 renders top demand partners.
func (r *Writer) Figure8(top []analysis.PartnerShare) {
	r.Section("Figure 8: top Demand Partners (% of HB websites)")
	for _, p := range top {
		r.printf("%-16s %6.2f%%  %s\n", p.Slug, 100*p.Share, bar(p.Share, 40))
	}
}

// Figure9 renders the partners-per-site CDF.
func (r *Writer) Figure9(res analysis.PartnersPerSiteResult) {
	r.Section("Figure 9: Demand Partners per website (ECDF)")
	r.printf("sites=%d  P(=1)=%.1f%%  P(>=5)=%.1f%%  P(>=10)=%.1f%%  max=%d\n",
		res.SiteCount, 100*res.FracOne, 100*res.FracGE5, 100*res.FracGE10, res.MaxCount)
	r.cdfRow(res.ECDF, []float64{1, 2, 3, 5, 10, 15, 20}, "%.0f partners")
}

// Figure10 renders partner combinations.
func (r *Writer) Figure10(combos []analysis.ComboShare) {
	r.Section("Figure 10: most frequent Demand Partner combinations")
	for _, c := range combos {
		r.printf("%-48s %6.2f%% (%d sites)\n", c.Key, 100*c.Share, c.Sites)
	}
}

// Figure11 renders per-facet partner bid shares.
func (r *Writer) Figure11(byFacet map[hb.Facet][]analysis.PartnerBidShare) {
	r.Section("Figure 11: top partners per HB facet (% of bids)")
	for _, f := range hb.Facets() {
		r.printf("-- %s --\n", f)
		for _, p := range byFacet[f] {
			r.printf("  %-16s %6.2f%% (%d bids)\n", p.Slug, 100*p.Share, p.Bids)
		}
	}
}

// Figure12 renders the latency CDF.
func (r *Writer) Figure12(res analysis.LatencyCDFResult) {
	r.Section("Figure 12: total HB latency per website (ECDF)")
	r.printf("sites=%d  median=%.0fms  >1s=%.1f%%  >3s=%.1f%%  >5s=%.1f%%\n",
		res.Sites, res.MedianMS, 100*res.FracOver1s, 100*res.FracOver3s, 100*res.FracOver5s)
	r.cdfRow(res.ECDF, []float64{100, 250, 500, 1000, 2000, 3000, 5000, 10000}, "%.0fms")
}

// Figure13 renders latency vs rank bins.
func (r *Writer) Figure13(bins []stats.BinSummary) {
	r.Section("Figure 13: HB latency vs publisher rank (bins of 500)")
	for _, b := range bins {
		r.printf("rank %6d-%-6d  %s\n", b.Lo+1, b.Hi+1, boxRow(b.Stats, "ms"))
	}
}

// Figure14 renders fastest/top/slowest partner latencies.
func (r *Writer) Figure14(res analysis.PartnerLatencyExtremes) {
	r.Section("Figure 14: fastest / top-market / slowest Demand Partner latencies")
	r.printf("-- fastest --\n")
	for _, p := range res.Fastest {
		r.printf("  %-16s %s\n", p.Slug, boxRow(p.Stats, "ms"))
	}
	r.printf("-- top market share --\n")
	for _, p := range res.Top {
		r.printf("  %-16s %s\n", p.Slug, boxRow(p.Stats, "ms"))
	}
	r.printf("-- slowest --\n")
	for _, p := range res.Slowest {
		r.printf("  %-16s %s\n", p.Slug, boxRow(p.Stats, "ms"))
	}
}

// Figure15 renders latency vs partner count.
func (r *Writer) Figure15(rows []analysis.CountLatency) {
	r.Section("Figure 15: HB latency vs number of Demand Partners")
	for _, c := range rows {
		r.printf("%2d partners  %s  sites=%.1f%%\n",
			c.Partners, boxRow(c.Stats, "ms"), 100*c.SiteShare)
	}
}

// Figure16 renders latency vs popularity bins.
func (r *Writer) Figure16(bins []stats.BinSummary) {
	r.Section("Figure 16: partner latency vs popularity rank (bins of 10)")
	for _, b := range bins {
		r.printf("rank %2d-%-3d  %s  span=%.0fms\n",
			b.Lo+1, b.Hi+1, boxRow(b.Stats, "ms"), b.Stats.WhiskerSpan())
	}
}

// Figure17 renders the late-bid CDF.
func (r *Writer) Figure17(res analysis.LateBidsResult) {
	r.Section("Figure 17: late bids per auction (ECDF over auctions with late bids)")
	r.printf("auctions=%d with-late=%d (%.1f%%)  median-late-share=%.0f%%  p90=%.0f%%\n",
		res.TotalAuctions, res.AuctionsWithLate,
		100*float64(res.AuctionsWithLate)/float64(max(1, res.TotalAuctions)),
		res.MedianLateShare, res.P90LateShare)
	r.printf("one-late=%.0f%%  two-plus=%.0f%%  four-plus=%.0f%% (of auctions with late bids)\n",
		100*res.FracOneLate, 100*res.FracTwoPlus, 100*res.FracFourPlus)
	r.cdfRow(res.ECDF, []float64{20, 40, 50, 60, 80, 100}, "%.0f%% late")
}

// Figure18 renders per-partner late shares.
func (r *Writer) Figure18(rows []analysis.PartnerLateShare) {
	r.Section("Figure 18: late bids per Demand Partner (% of their bids)")
	for _, p := range rows {
		r.printf("%-16s %6.1f%% late (%d/%d bids)\n", p.Slug, 100*p.LateShare, p.LateBids, p.Bids)
	}
}

// Figure19 renders slots-per-site CDFs.
func (r *Writer) Figure19(res analysis.SlotsPerSiteResult) {
	r.Section("Figure 19: auctioned ad-slots per website, per facet (ECDF)")
	for _, f := range hb.Facets() {
		e, ok := res.ByFacet[f]
		if !ok {
			continue
		}
		r.printf("%-16s median=%.0f p90=%.0f  ", f, e.Quantile(0.5), e.Quantile(0.9))
		r.cdfRowInline(e, []float64{1, 2, 5, 10, 20})
	}
	r.printf("sites auctioning >20 slots: %.1f%%\n", 100*res.FracOver20)
}

// Figure20 renders latency vs slot count.
func (r *Writer) Figure20(rows []analysis.CountLatency) {
	r.Section("Figure 20: HB latency vs auctioned ad-slots")
	for _, c := range rows {
		r.printf("%2d slots  %s (sites=%d)\n", c.Partners, boxRow(c.Stats, "ms"), c.Sites)
	}
}

// Figure21 renders slot-size shares per facet.
func (r *Writer) Figure21(byFacet map[hb.Facet][]analysis.SizeShare) {
	r.Section("Figure 21: ad-slot dimensions per facet (% of slots)")
	for _, f := range hb.Facets() {
		r.printf("-- %s --\n", f)
		for _, s := range byFacet[f] {
			r.printf("  %-9s %6.2f%%  %s\n", s.Size, 100*s.Share, bar(s.Share, 30))
		}
	}
}

// Figure22 renders price CDFs per facet.
func (r *Writer) Figure22(res analysis.PriceCDFResult) {
	r.Section("Figure 22: bid prices per facet (ECDF, USD CPM)")
	for _, f := range hb.Facets() {
		e, ok := res.ByFacet[f]
		if !ok {
			continue
		}
		r.printf("%-16s n=%-7d median=%.4f p75=%.4f p95=%.4f\n",
			f, e.Len(), e.Quantile(0.5), e.Quantile(0.75), e.Quantile(0.95))
	}
	r.printf("bids above 0.5 CPM: %.1f%%\n", 100*res.FracOverHalf)
}

// Figure23 renders prices per slot size.
func (r *Writer) Figure23(rows []analysis.SizePrice) {
	r.Section("Figure 23: bid price per ad-slot dimension (sorted by area)")
	for _, s := range rows {
		r.printf("%-9s median=%.5f CPM  p25=%.5f p75=%.5f (n=%d)\n",
			s.Size, s.Stats.Median, s.Stats.P25, s.Stats.P75, s.Bids)
	}
}

// Figure24 renders prices vs popularity bins.
func (r *Writer) Figure24(bins []stats.BinSummary) {
	r.Section("Figure 24: bid price vs partner popularity (bins of 10)")
	for _, b := range bins {
		r.printf("rank %2d-%-3d  median=%.4f p25=%.4f p75=%.4f p95=%.4f CPM\n",
			b.Lo+1, b.Hi+1, b.Stats.Median, b.Stats.P25, b.Stats.P75, b.Stats.P95)
	}
}

// Traffic renders the §7.3 network-overhead summary.
func (r *Writer) Traffic(t analysis.TrafficSummary) {
	r.Section("Network overhead (§7.3)")
	r.printf("HB visits analyzed: %d\n", t.Sites)
	r.printf("bid requests/visit  %s\n", boxRow(t.BidRequests, "req"))
	r.printf("HB-related/visit    %s\n", boxRow(t.HBRelated, "req"))
	r.printf("total requests/visit %s\n", boxRow(t.Total, "req"))
	for _, f := range hb.Facets() {
		if v, ok := t.MeanByFacet[f]; ok {
			r.printf("mean HB-related requests, %-16s %.1f\n", f.String()+":", v)
		}
	}
	if t.AmplificationVsWaterfall > 0 {
		r.printf("bid-request amplification vs waterfall: %.2fx\n", t.AmplificationVsWaterfall)
	}
}

// Comparison renders the HB vs waterfall experiment.
func (r *Writer) Comparison(c analysis.ProtocolComparison) {
	r.Section("HB vs waterfall latency (headline comparison)")
	r.printf("sites=%d\n", c.Sites)
	r.printf("HB        %s\n", boxRow(c.HBLatency, "ms"))
	r.printf("waterfall %s\n", boxRow(c.WaterfallLatency, "ms"))
	r.printf("median ratio HB/waterfall = %.2fx   p90 ratio = %.2fx\n", c.MedianRatio, c.P90Ratio)
	r.printf("waterfall mean revenue left on table: %.4f CPM/slot\n", c.RevenueLossMean)
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func (r *Writer) cdfRow(e *stats.ECDF, xs []float64, format string) {
	if e == nil || e.Len() == 0 {
		r.printf("(no samples)\n")
		return
	}
	var parts []string
	for _, x := range xs {
		parts = append(parts, fmt.Sprintf(format+"→%.0f%%", x, 100*e.P(x)))
	}
	r.printf("CDF: %s\n", strings.Join(parts, "  "))
}

func (r *Writer) cdfRowInline(e *stats.ECDF, xs []float64) {
	var parts []string
	for _, x := range xs {
		parts = append(parts, fmt.Sprintf("≤%.0f:%.0f%%", x, 100*e.P(x)))
	}
	r.printf("%s\n", strings.Join(parts, " "))
}

func boxRow(b stats.Box, unit string) string {
	return fmt.Sprintf("p5=%.0f p25=%.0f median=%.0f p75=%.0f p95=%.0f %s (n=%d)",
		b.P5, b.P25, b.Median, b.P75, b.P95, unit, b.N)
}

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Full renders every dataset-derived section in paper order — the batch
// convenience over a streaming Figures set (fold, then render); the
// world-dependent sections (Figure 4, the waterfall comparison) are
// rendered separately by their dedicated commands.
func (r *Writer) Full(recs []*dataset.SiteRecord, reg *partners.Registry) {
	f := NewFigures(reg)
	for _, rec := range recs {
		f.Add(rec)
	}
	r.Figures(f)
}
