package report

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"headerbid/internal/crawler"
	"headerbid/internal/dataset"
	"headerbid/internal/partners"
	"headerbid/internal/sitegen"
)

// goldenRecords reproduces the crawl the committed golden report was
// rendered from: 600 sites, seed 1, two crawl days (the defaults of the
// Experiment that generated testdata/full_report_600x2_seed1.golden on
// the pre-metrics batch pipeline).
func goldenRecords(t *testing.T) []*dataset.SiteRecord {
	t.Helper()
	cfg := sitegen.DefaultConfig(1)
	cfg.NumSites = 600
	w := sitegen.Generate(cfg)
	opts := crawler.DefaultOptions(1)
	opts.Days = 2
	return crawler.CrawlWorld(w, opts)
}

func readGolden(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "full_report_600x2_seed1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFullReportMatchesPreRedesignGolden pins the streaming figure
// report to the batch report the pre-metrics pipeline produced: every
// ported analysis must be result-identical to its batch ancestor, and
// the rendered bytes prove it for all 21 sections at once.
func TestFullReportMatchesPreRedesignGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full 600x2 crawl")
	}
	recs := goldenRecords(t)
	golden := readGolden(t)

	var batch bytes.Buffer
	New(&batch).Full(recs, partners.Default())
	if !bytes.Equal(batch.Bytes(), golden) {
		t.Errorf("batch Full output diverged from pre-redesign golden (len %d vs %d)",
			batch.Len(), len(golden))
	}

	f := NewFigures(partners.Default())
	for _, r := range recs {
		f.Add(r)
	}
	var stream bytes.Buffer
	f.Render(&stream)
	if !bytes.Equal(stream.Bytes(), golden) {
		t.Errorf("streamed Figures output diverged from pre-redesign golden (len %d vs %d)",
			stream.Len(), len(golden))
	}
}

// TestShardedFiguresMatchGolden splits the record stream across shards
// (round-robin, as a worker pool would) and merges them, requiring the
// rendered report to stay byte-identical to the golden for several shard
// counts and merge orders.
func TestShardedFiguresMatchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full 600x2 crawl")
	}
	recs := goldenRecords(t)
	golden := readGolden(t)

	for _, shards := range []int{2, 3, 8} {
		root := NewFigures(partners.Default())
		parts := make([]*Figures, shards)
		for i := range parts {
			parts[i] = root.NewShard().(*Figures)
		}
		for i, r := range recs {
			parts[i%shards].Add(r)
		}
		// Merge back-to-front to exercise a non-stream merge order.
		for i := len(parts) - 1; i >= 0; i-- {
			root.Merge(parts[i])
		}
		var buf bytes.Buffer
		root.Render(&buf)
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Errorf("sharded (%d) Figures output diverged from golden", shards)
		}
	}
}
