package report

import (
	"fmt"
	"io"

	"headerbid/internal/analysis"
	"headerbid/internal/dataset"
	"headerbid/internal/partners"
	"headerbid/internal/wire"
)

// Figures is the complete streaming figure report: one mergeable
// accumulator per dataset-derived section of the paper, bundled as a
// single analysis.Metric. Attach it to a live crawl (per-worker shards,
// merged at run end) or fold a JSONL stream into it record by record —
// either way the full report renders without the record slice ever being
// materialized, and the output is byte-identical to the legacy batch
// path (which is now a fold over this type) regardless of worker count.
//
// The section parameters (top-k cutoffs, bin widths, sample floors) are
// fixed to the ones the paper's figures use.
type Figures struct {
	reg *partners.Registry

	summary       *analysis.SummaryMetric
	adoption      *analysis.AdoptionByRankBandMetric
	facets        *analysis.FacetBreakdownMetric
	topPartners   *analysis.TopPartnersMetric
	perSite       *analysis.PartnersPerSiteMetric
	combos        *analysis.PartnerCombosMetric
	perFacet      *analysis.PartnersPerFacetMetric
	latency       *analysis.LatencyAccumulator
	latVsRank     *analysis.LatencyVsRankMetric
	partnerLat    *analysis.PartnerLatenciesMetric
	latVsPartners *analysis.LatencyVsPartnerCountMetric
	latVsPop      *analysis.LatencyVsPopularityMetric
	lateBids      *analysis.LateBidsMetric
	latePerPart   *analysis.LateBidsPerPartnerMetric
	slotsPerSite  *analysis.SlotsPerSiteMetric
	latVsSlots    *analysis.LatencyVsSlotsMetric
	slotSizes     *analysis.SlotSizesMetric
	priceCDF      *analysis.PriceCDFMetric
	pricePerSize  *analysis.PricePerSizeMetric
	priceVsPop    *analysis.PriceVsPopularityMetric
	traffic       *analysis.TrafficMetric

	// all lists every member in a fixed order for Add/Merge fan-out;
	// nonHB is the subset whose Add consumes non-HB records (every other
	// member self-filters on r.HB). Both are declared together in
	// NewFigures — extend nonHB whenever a new member counts non-HB
	// records, or the fast path below will silently starve it.
	all   []analysis.Metric
	nonHB []analysis.Metric
}

// NewFigures returns an empty figure-report accumulator rendering with
// the given partner registry (popularity ranks, market-share ordering).
func NewFigures(reg *partners.Registry) *Figures {
	f := &Figures{
		reg:           reg,
		summary:       analysis.NewSummary(),
		adoption:      analysis.NewAdoptionByRankBand(),
		facets:        analysis.NewFacetBreakdown(),
		topPartners:   analysis.NewTopPartners(12),
		perSite:       analysis.NewPartnersPerSite(),
		combos:        analysis.NewPartnerCombos(15),
		perFacet:      analysis.NewPartnersPerFacet(10),
		latency:       analysis.NewLatencyAccumulator(),
		latVsRank:     analysis.NewLatencyVsRank(500),
		partnerLat:    analysis.NewPartnerLatencies(),
		latVsPartners: analysis.NewLatencyVsPartnerCount(15),
		latVsPop:      analysis.NewLatencyVsPopularity(reg, 10),
		lateBids:      analysis.NewLateBids(),
		latePerPart:   analysis.NewLateBidsPerPartner(25, 3),
		slotsPerSite:  analysis.NewSlotsPerSite(),
		latVsSlots:    analysis.NewLatencyVsSlots(15),
		slotSizes:     analysis.NewSlotSizes(10),
		priceCDF:      analysis.NewPriceCDF(),
		pricePerSize:  analysis.NewPricePerSize(5),
		priceVsPop:    analysis.NewPriceVsPopularity(reg, 10),
		traffic:       analysis.NewTraffic(0),
	}
	f.all = []analysis.Metric{
		f.summary, f.adoption, f.facets, f.topPartners, f.perSite,
		f.combos, f.perFacet, f.latency, f.latVsRank, f.partnerLat,
		f.latVsPartners, f.latVsPop, f.lateBids, f.latePerPart,
		f.slotsPerSite, f.latVsSlots, f.slotSizes, f.priceCDF,
		f.pricePerSize, f.priceVsPop, f.traffic,
	}
	f.nonHB = []analysis.Metric{f.summary, f.adoption}
	return f
}

// Name identifies the composite metric.
func (f *Figures) Name() string { return "figure_report" }

// Add folds one record into every section. Non-HB records only touch
// the members that count them (Table 1 and rank-band adoption, the
// nonHB subset); every other member ignores them, so the ~86% non-HB
// majority of a paper-calibrated crawl skips 19 interface dispatches
// per record.
func (f *Figures) Add(r *dataset.SiteRecord) {
	if !r.HB {
		for _, m := range f.nonHB {
			m.Add(r)
		}
		return
	}
	for _, m := range f.all {
		m.Add(r)
	}
}

// NewShard returns a fresh empty figure set with the same registry.
func (f *Figures) NewShard() analysis.Metric { return NewFigures(f.reg) }

// Merge folds a shard in, section by section.
func (f *Figures) Merge(other analysis.Metric) {
	o, ok := other.(*Figures)
	if !ok {
		panic(fmt.Sprintf("report: cannot merge %T into *Figures", other))
	}
	for i, m := range f.all {
		m.Merge(o.all[i])
	}
}

// Snapshot returns the accumulator itself; render it with Render.
//
//hbvet:allow metriclaws Figures is a composite view over sub-metrics; Render needs the live accumulator, and callers treat it as read-only
func (f *Figures) Snapshot() any { return f }

// EncodeState serializes every section in the fixed f.all order. The
// section set and order are part of the snapshot format: changing
// either is a format change and must bump snapshot.FormatVersion.
func (f *Figures) EncodeState(w *wire.Writer) {
	for _, m := range f.all {
		m.(analysis.Codec).EncodeState(w)
	}
}

// DecodeState replaces every section's state with the serialized one.
func (f *Figures) DecodeState(r *wire.Reader) error {
	for _, m := range f.all {
		if err := m.(analysis.Codec).DecodeState(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// Summary returns the Table-1 roll-up over everything folded in.
func (f *Figures) Summary() dataset.Summary { return f.summary.Summary() }

// Render writes the full figure report over everything folded in.
func (f *Figures) Render(w io.Writer) { New(w).Figures(f) }

// Figures renders every dataset-derived section in paper order from a
// streaming figure set; the world-dependent sections (Figure 4, the
// waterfall comparison) are rendered separately by their dedicated
// commands.
func (r *Writer) Figures(f *Figures) {
	r.Table1(f.summary.Summary())
	r.AdoptionBands(f.adoption.Result())
	r.FacetBreakdown(f.facets.Result())
	r.Figure8(f.topPartners.Result())
	r.Figure9(f.perSite.Result())
	r.Figure10(f.combos.Result())
	r.Figure11(f.perFacet.Result())
	r.Figure12(f.latency.Result())
	r.Figure13(f.latVsRank.Result())
	r.Figure14(f.partnerLat.Extremes(f.reg, 10, 5))
	r.Figure15(f.latVsPartners.Result())
	r.Figure16(f.latVsPop.Result())
	r.Figure17(f.lateBids.Result())
	r.Figure18(f.latePerPart.Result())
	r.Figure19(f.slotsPerSite.Result())
	r.Figure20(f.latVsSlots.Result())
	r.Figure21(f.slotSizes.Result())
	r.Figure22(f.priceCDF.Result())
	r.Figure23(f.pricePerSize.Result())
	r.Figure24(f.priceVsPop.Result())
	r.Traffic(f.traffic.Result())
}
