package report

import (
	"bytes"
	"strings"
	"testing"

	"headerbid/internal/analysis"
	"headerbid/internal/dataset"
	"headerbid/internal/partners"
	"headerbid/internal/stats"
)

func fixture() []*dataset.SiteRecord {
	return []*dataset.SiteRecord{
		{
			Domain: "a.example", Rank: 1, HB: true, Facet: "hybrid",
			Partners: []string{"dfp", "appnexus"},
			Auctions: []dataset.AuctionRecord{
				{ID: "x", AdUnit: "u1", Size: "300x250",
					Bids:   []dataset.BidRecord{{Bidder: "appnexus", CPM: 0.4, LatencyMS: 300}},
					Winner: "appnexus", WinnerCPM: 0.4},
			},
			TotalHBLatencyMS: 700, AdSlotsAuctioned: 1, Loaded: true,
			PartnerLatencyMS: map[string][]float64{"appnexus": {300}},
		},
		{
			Domain: "b.example", Rank: 2, HB: true, Facet: "server",
			Partners: []string{"dfp"},
			Auctions: []dataset.AuctionRecord{
				{ID: "y", AdUnit: "h1", Size: "728x90",
					Bids: []dataset.BidRecord{{Bidder: "rubicon", CPM: 0.1, Source: "s2s"}}},
			},
			TotalHBLatencyMS: 320, AdSlotsAuctioned: 1, Loaded: true,
		},
		{Domain: "c.example", Rank: 3, Loaded: true},
	}
}

func render(t *testing.T, f func(*Writer)) string {
	t.Helper()
	var buf bytes.Buffer
	f(New(&buf))
	return buf.String()
}

func TestTable1Rendering(t *testing.T) {
	out := render(t, func(w *Writer) { w.Table1(dataset.Summarize(fixture())) })
	for _, want := range []string{"websites crawled", "3", "websites with HB", "auctions detected"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFullReportRendersEverySection(t *testing.T) {
	var buf bytes.Buffer
	New(&buf).Full(fixture(), partners.Default())
	out := buf.String()
	sections := []string{
		"Table 1", "rank band", "Facet breakdown",
		"Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12",
		"Figure 13", "Figure 14", "Figure 15", "Figure 16", "Figure 17",
		"Figure 18", "Figure 19", "Figure 20", "Figure 21", "Figure 22",
		"Figure 23", "Figure 24",
	}
	for _, s := range sections {
		if !strings.Contains(out, s) {
			t.Errorf("full report missing section %q", s)
		}
	}
}

func TestFigure12Markers(t *testing.T) {
	out := render(t, func(w *Writer) { w.Figure12(analysis.LatencyCDF(fixture())) })
	if !strings.Contains(out, "median=") || !strings.Contains(out, ">3s=") {
		t.Fatalf("latency markers missing:\n%s", out)
	}
}

func TestComparisonRendering(t *testing.T) {
	out := render(t, func(w *Writer) {
		w.Comparison(analysis.ProtocolComparison{
			Sites:            10,
			HBLatency:        stats.Box{Median: 600, N: 10},
			WaterfallLatency: stats.Box{Median: 200, N: 10},
			MedianRatio:      3.0,
			P90Ratio:         12.0,
		})
	})
	if !strings.Contains(out, "3.00x") || !strings.Contains(out, "waterfall") {
		t.Fatalf("comparison output:\n%s", out)
	}
}

func TestEmptyCDFHandled(t *testing.T) {
	out := render(t, func(w *Writer) {
		w.Figure9(analysis.PartnersPerSite(nil))
	})
	if !strings.Contains(out, "no samples") && !strings.Contains(out, "P(=1)") {
		t.Fatalf("empty CDF crashed or vanished:\n%s", out)
	}
}

func TestBarClamped(t *testing.T) {
	if bar(2.0, 10) != strings.Repeat("#", 10) {
		t.Fatal("bar not clamped high")
	}
	if bar(-1, 10) != "" {
		t.Fatal("bar not clamped low")
	}
}

func TestFigure4Rendering(t *testing.T) {
	out := render(t, func(w *Writer) {
		w.Figure4([]analysis.YearAdoption{
			{Year: 2014, Sites: 1000, Detected: 100, Rate: 0.10, TrueRate: 0.10},
			{Year: 2019, Sites: 1000, Detected: 210, Rate: 0.21, TrueRate: 0.21},
		})
	})
	if !strings.Contains(out, "2014") || !strings.Contains(out, "2019") {
		t.Fatalf("figure 4 output:\n%s", out)
	}
}
