// Package webreq models the browser's web-request layer: the records a
// chrome.webRequest-style inspector sees, and the hook registry that lets
// an extension observe (without altering) every request and response the
// page makes. This is the detector's second observation channel.
package webreq

import (
	"strconv"
	"strings"
	"time"

	"headerbid/internal/urlkit"
)

// Method is an HTTP method; HB bid requests are typically POST.
type Method string

const (
	GET  Method = "GET"
	POST Method = "POST"
)

// Kind classifies what the page was fetching, mirroring the resource types
// the webRequest API exposes.
type Kind string

const (
	KindDocument Kind = "document"
	KindScript   Kind = "script"
	KindXHR      Kind = "xhr"
	KindImage    Kind = "image"
	KindCreative Kind = "creative" // ad markup/impression fetch
	KindBeacon   Kind = "beacon"   // win/render notifications
	KindOther    Kind = "other"
)

// Request is one outgoing page request.
type Request struct {
	ID      int64
	URL     string
	Method  Method
	Kind    Kind
	Body    string // request payload (bid requests carry JSON)
	Header  map[string]string
	Sent    time.Time
	Referer string

	// Parse cache: a simulated request's URL is split exactly once and
	// the pieces are reused by every hop (network host lookup, server
	// handlers, detector hooks, host matching) instead of re-parsed.
	// Builders that assembled the URL from parts can prefill the query
	// view with PrefillParams. Requests are confined to one page event
	// loop, so the lazy fill needs no locking.
	hostDone    bool
	host        string
	registrable string
	paramsDone  bool
	params      map[string]string
}

func (r *Request) ensureHost() {
	if !r.hostDone {
		r.hostDone = true
		r.host = urlkit.Host(r.URL)
		r.registrable = urlkit.RegistrableDomain(r.host)
	}
}

// Host returns the lower-case request host, parsed once and cached.
func (r *Request) Host() string { r.ensureHost(); return r.host }

// RegistrableHost returns the registrable domain (eTLD+1) of the request
// host, computed once and cached — the key both the simulated network's
// host table and the detector's partner matching use.
func (r *Request) RegistrableHost() string { r.ensureHost(); return r.registrable }

// Params returns the request's query parameters, parsed once and cached.
// The returned map is shared with every other caller (and possibly with
// the builder that prefilled it): treat it as read-only.
func (r *Request) Params() map[string]string {
	if !r.paramsDone {
		r.paramsDone = true
		r.params = urlkit.QueryParams(r.URL)
	}
	return r.params
}

// PrefillParams seeds the query-parameter cache with the map the URL was
// just built from (urlkit.WithParams), so the server side never re-parses
// what the client side encoded. The map is retained and shared; neither
// the builder nor any reader may modify it afterwards. Only valid when
// params matches the URL's full query (base URL carried no query of its
// own).
func (r *Request) PrefillParams(params map[string]string) {
	r.paramsDone = true
	r.params = params
}

// Response is the matching response delivered to the page.
type Response struct {
	RequestID int64
	Status    int
	Body      string
	Header    map[string]string
	Received  time.Time
	// Err is a transport-level failure (timeout, refused); Status is 0
	// when Err is non-empty.
	Err string
}

// OK reports a usable 2xx response.
func (r *Response) OK() bool { return r.Err == "" && r.Status >= 200 && r.Status < 300 }

// Exchange pairs a request with its response (response may be nil if the
// page unloaded first).
type Exchange struct {
	Request  *Request
	Response *Response
}

// Latency returns the request->response delay, or 0 when unanswered.
func (x Exchange) Latency() time.Duration {
	if x.Response == nil || x.Request == nil {
		return 0
	}
	return x.Response.Received.Sub(x.Request.Sent)
}

// String is a compact log form.
func (x Exchange) String() string {
	status := "pending"
	if x.Response != nil {
		if x.Response.Err != "" {
			status = "err:" + x.Response.Err
		} else {
			status = strconv.Itoa(x.Response.Status)
		}
	}
	return string(x.Request.Method) + " " + x.Request.URL + " -> " + status +
		" (" + x.Latency().String() + ")"
}

// RequestHook observes an outgoing request; ResponseHook observes a
// delivered response. Hooks must not mutate their arguments — the paper's
// tool explicitly infers "without altering" the requests.
type (
	RequestHook  func(*Request)
	ResponseHook func(*Request, *Response)
)

// Inspector is the webRequest hook registry for one page. It records
// every exchange and fans out to registered hooks in registration order.
// The zero value is ready to use.
//
// Hooks are kept in append-ordered slices (registration order is the
// fan-out order), so notifying them is a plain iteration — the previous
// map-plus-sort registry allocated a sorted ID slice on every request of
// every visit.
//
// Exchanges are stored by value in one dense slice indexed by request ID
// (the browser mints IDs 1,2,3,... from NextID, so ID-1 is the slice
// index). The previous map[int64]*Exchange paid one Exchange allocation
// plus map growth on every request of every visit. Requests recorded
// with out-of-band IDs (tests driving SawRequest directly) spill into a
// small overflow map, keeping the external behavior identical.
type Inspector struct {
	nextID    int64
	reqHooks  []registeredReqHook
	respHooks []registeredRespHook
	hookSeq   int
	exchanges []Exchange          // exchanges[i] has Request.ID == i+1
	overflow  map[int64]*Exchange // non-sequential IDs only
	// order is the recording order by ID. It stays nil while every
	// request is sequential (the dense slice IS the order) and is
	// materialized only when an out-of-band ID first appears.
	order []int64
}

type registeredReqHook struct {
	id int
	fn RequestHook
}

type registeredRespHook struct {
	id int
	fn ResponseHook
}

// NewInspector returns an empty inspector.
func NewInspector() *Inspector {
	return &Inspector{}
}

// Reset returns the inspector to the state NewInspector would produce,
// reusing the hook and exchange storage. Pages pooled across crawl
// visits reset their inspector instead of allocating a new one. hookSeq
// is intentionally NOT reset: cancel funcs match hooks by id, so keeping
// ids monotonic across resets makes a stale cancel from a previous page
// a no-op instead of un-registering a current hook. order reverts to nil
// (not length zero) to restore the dense "slice index IS the recording
// order" invariant.
func (in *Inspector) Reset() {
	in.nextID = 0
	clear(in.reqHooks)
	in.reqHooks = in.reqHooks[:0]
	clear(in.respHooks)
	in.respHooks = in.respHooks[:0]
	clear(in.exchanges)
	in.exchanges = in.exchanges[:0]
	clear(in.overflow)
	in.order = nil
}

// OnRequest registers a request hook and returns a cancel func. Cancel
// nils the entry rather than splicing, so cancelling from inside a hook
// during dispatch cannot skip or re-run sibling hooks.
func (in *Inspector) OnRequest(h RequestHook) (cancel func()) {
	id := in.hookSeq
	in.hookSeq++
	in.reqHooks = append(in.reqHooks, registeredReqHook{id: id, fn: h})
	return func() {
		for i := range in.reqHooks {
			if in.reqHooks[i].id == id {
				in.reqHooks[i].fn = nil
				return
			}
		}
	}
}

// OnResponse registers a response hook and returns a cancel func (same
// cancellation semantics as OnRequest).
func (in *Inspector) OnResponse(h ResponseHook) (cancel func()) {
	id := in.hookSeq
	in.hookSeq++
	in.respHooks = append(in.respHooks, registeredRespHook{id: id, fn: h})
	return func() {
		for i := range in.respHooks {
			if in.respHooks[i].id == id {
				in.respHooks[i].fn = nil
				return
			}
		}
	}
}

// NextID allocates a request ID. The browser calls this when creating
// requests so IDs are unique per page.
func (in *Inspector) NextID() int64 {
	in.nextID++
	return in.nextID
}

// SawRequest records req and notifies request hooks.
func (in *Inspector) SawRequest(req *Request) {
	if req.ID == 0 {
		req.ID = in.NextID()
	}
	switch {
	case req.ID == int64(len(in.exchanges))+1:
		// The browser's sequential-ID fast path: record in place.
		in.exchanges = append(in.exchanges, Exchange{Request: req})
		if in.order != nil {
			in.order = append(in.order, req.ID)
		}
	case req.ID >= 1 && req.ID <= int64(len(in.exchanges)):
		// Re-recorded ID: last write wins, as with the former map. The
		// ID appears in the order twice, both resolving to the latest
		// exchange — exactly the old iteration behavior.
		in.exchanges[req.ID-1] = Exchange{Request: req}
		in.materializeOrder()
		in.order = append(in.order, req.ID)
	default:
		if in.overflow == nil {
			in.overflow = make(map[int64]*Exchange, 4)
		}
		in.materializeOrder()
		in.overflow[req.ID] = &Exchange{Request: req}
		in.order = append(in.order, req.ID)
	}
	for _, h := range in.reqHooks {
		if h.fn != nil {
			h.fn(req)
		}
	}
}

// materializeOrder builds the explicit recording order kept implicitly
// by the dense slice, on the first non-sequential recording.
func (in *Inspector) materializeOrder() {
	if in.order != nil {
		return
	}
	in.order = make([]int64, len(in.exchanges), len(in.exchanges)+4)
	for i := range in.exchanges {
		in.order[i] = int64(i) + 1
	}
}

// lookup returns the recorded exchange for a request ID, or nil.
func (in *Inspector) lookup(id int64) *Exchange {
	if id >= 1 && id <= int64(len(in.exchanges)) {
		return &in.exchanges[id-1]
	}
	return in.overflow[id]
}

// SawResponse records resp against its request and notifies response
// hooks. Responses for unknown request IDs are ignored (the page may have
// been torn down).
func (in *Inspector) SawResponse(resp *Response) {
	x := in.lookup(resp.RequestID)
	if x == nil {
		return
	}
	x.Response = resp
	for _, h := range in.respHooks {
		if h.fn != nil {
			h.fn(x.Request, resp)
		}
	}
}

// Exchanges returns all exchanges in request order.
func (in *Inspector) Exchanges() []Exchange {
	if in.order == nil {
		out := make([]Exchange, len(in.exchanges))
		copy(out, in.exchanges)
		return out
	}
	out := make([]Exchange, 0, len(in.order))
	for _, id := range in.order {
		out = append(out, *in.lookup(id))
	}
	return out
}

// Pending returns the number of requests still awaiting a response.
func (in *Inspector) Pending() int {
	n := 0
	if in.order == nil {
		for i := range in.exchanges {
			if in.exchanges[i].Response == nil {
				n++
			}
		}
		return n
	}
	for _, id := range in.order {
		if in.lookup(id).Response == nil {
			n++
		}
	}
	return n
}

// MatchHosts returns the exchanges whose request host's registrable domain
// appears in the given set (lower-case registrable domains). This is the
// "apply the HB partner list" operation from Figure 3 of the paper.
func (in *Inspector) MatchHosts(domains map[string]bool) []Exchange {
	var out []Exchange
	if in.order == nil {
		for i := range in.exchanges {
			x := &in.exchanges[i]
			if domains[x.Request.RegistrableHost()] {
				out = append(out, *x)
			}
		}
		return out
	}
	for _, id := range in.order {
		x := in.lookup(id)
		if domains[x.Request.RegistrableHost()] {
			out = append(out, *x)
		}
	}
	return out
}

// HostSet builds a registrable-domain set from raw hostnames.
func HostSet(hosts []string) map[string]bool {
	set := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		d := urlkit.RegistrableDomain(strings.ToLower(h))
		if d != "" {
			set[d] = true
		}
	}
	return set
}
