package webreq

import (
	"fmt"
	"testing"
	"time"
)

// Exchange.String is rendered without fmt (hotalloc); pin the strconv
// form byte-for-byte to the fmt rendering it replaced.
func TestExchangeStringPinnedToFmt(t *testing.T) {
	sent := time.Date(2019, 2, 1, 0, 0, 0, 0, time.UTC)
	cases := []Exchange{
		{Request: &Request{URL: "https://bid.adnxs.com/hb", Method: POST, Sent: sent}},
		{
			Request:  &Request{URL: "https://x.example/a", Method: GET, Sent: sent},
			Response: &Response{Status: 204, Received: sent.Add(37 * time.Millisecond)},
		},
		{
			Request:  &Request{URL: "https://y.example/b", Method: GET, Sent: sent},
			Response: &Response{Err: "timeout", Received: sent.Add(5 * time.Second)},
		},
	}
	for _, x := range cases {
		status := "pending"
		if x.Response != nil {
			if x.Response.Err != "" {
				status = "err:" + x.Response.Err
			} else {
				status = fmt.Sprintf("%d", x.Response.Status)
			}
		}
		want := fmt.Sprintf("%s %s -> %s (%s)", x.Request.Method, x.Request.URL, status, x.Latency())
		if got := x.String(); got != want {
			t.Errorf("Exchange.String() = %q, want fmt-pinned %q", got, want)
		}
	}
}
