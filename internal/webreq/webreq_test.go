package webreq

import (
	"testing"
	"time"
)

func TestInspectorRecordsExchanges(t *testing.T) {
	in := NewInspector()
	req := &Request{URL: "https://bid.adnxs.com/hb/v1/bid", Method: POST, Sent: time.Now()}
	in.SawRequest(req)
	if req.ID == 0 {
		t.Fatal("request ID not assigned")
	}
	in.SawResponse(&Response{RequestID: req.ID, Status: 200, Received: req.Sent.Add(120 * time.Millisecond)})

	xs := in.Exchanges()
	if len(xs) != 1 {
		t.Fatalf("exchanges = %d", len(xs))
	}
	if xs[0].Latency() != 120*time.Millisecond {
		t.Fatalf("latency = %v", xs[0].Latency())
	}
	if in.Pending() != 0 {
		t.Fatalf("pending = %d", in.Pending())
	}
}

func TestInspectorHooksFireInOrder(t *testing.T) {
	in := NewInspector()
	var order []string
	in.OnRequest(func(*Request) { order = append(order, "r1") })
	in.OnRequest(func(*Request) { order = append(order, "r2") })
	in.OnResponse(func(*Request, *Response) { order = append(order, "p1") })
	req := &Request{URL: "https://x.example/"}
	in.SawRequest(req)
	in.SawResponse(&Response{RequestID: req.ID})
	want := []string{"r1", "r2", "p1"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestInspectorHookCancel(t *testing.T) {
	in := NewInspector()
	n := 0
	cancel := in.OnRequest(func(*Request) { n++ })
	in.SawRequest(&Request{URL: "https://a.example/"})
	cancel()
	in.SawRequest(&Request{URL: "https://b.example/"})
	if n != 1 {
		t.Fatalf("hook fired %d times after cancel, want 1", n)
	}
}

func TestInspectorUnknownResponseIgnored(t *testing.T) {
	in := NewInspector()
	in.SawResponse(&Response{RequestID: 999}) // must not panic or record
	if len(in.Exchanges()) != 0 {
		t.Fatal("phantom exchange recorded")
	}
}

func TestInspectorPending(t *testing.T) {
	in := NewInspector()
	a := &Request{URL: "https://a.example/"}
	b := &Request{URL: "https://b.example/"}
	in.SawRequest(a)
	in.SawRequest(b)
	if in.Pending() != 2 {
		t.Fatalf("pending = %d", in.Pending())
	}
	in.SawResponse(&Response{RequestID: a.ID})
	if in.Pending() != 1 {
		t.Fatalf("pending = %d", in.Pending())
	}
}

func TestMatchHosts(t *testing.T) {
	in := NewInspector()
	for _, u := range []string{
		"https://bid.adnxs.com/hb/v1/bid",
		"https://cdn.static.example/jquery.js",
		"https://sync.rubiconproject.com/pixel",
	} {
		in.SawRequest(&Request{URL: u})
	}
	set := HostSet([]string{"adnxs.com", "rubiconproject.com"})
	got := in.MatchHosts(set)
	if len(got) != 2 {
		t.Fatalf("matched %d, want 2", len(got))
	}
}

func TestHostSetNormalizes(t *testing.T) {
	set := HostSet([]string{"Bid.ADNXS.com", ""})
	if !set["adnxs.com"] {
		t.Fatalf("set = %v", set)
	}
	if len(set) != 1 {
		t.Fatalf("empty host not skipped: %v", set)
	}
}

func TestResponseOK(t *testing.T) {
	cases := []struct {
		r    Response
		want bool
	}{
		{Response{Status: 200}, true},
		{Response{Status: 204}, true},
		{Response{Status: 404}, false},
		{Response{Status: 500}, false},
		{Response{Err: "timeout"}, false},
		{Response{Status: 200, Err: "reset"}, false},
	}
	for _, c := range cases {
		if got := c.r.OK(); got != c.want {
			t.Errorf("OK(%+v) = %v", c.r, got)
		}
	}
}

func TestRequestParamsAndHost(t *testing.T) {
	r := &Request{URL: "https://Ads.Example.com/serve?hb_pb=0.5"}
	if r.Host() != "ads.example.com" {
		t.Fatalf("host = %q", r.Host())
	}
	if r.Params()["hb_pb"] != "0.5" {
		t.Fatalf("params = %v", r.Params())
	}
}

func TestExchangeString(t *testing.T) {
	req := &Request{URL: "https://x.example/a", Method: GET, Sent: time.Now()}
	x := Exchange{Request: req}
	if s := x.String(); s == "" {
		t.Fatal("empty string for pending exchange")
	}
	x.Response = &Response{Err: "refused"}
	if s := x.String(); s == "" {
		t.Fatal("empty string for error exchange")
	}
}

func TestInspectorReset(t *testing.T) {
	in := NewInspector()
	n := 0
	cancelOld := in.OnRequest(func(*Request) { n++ })
	in.OnResponse(func(*Request, *Response) { n += 100 })
	r := &Request{URL: "https://a.example/x"}
	r.ID = in.NextID()
	in.SawRequest(r)
	in.SawResponse(&Response{RequestID: r.ID, Status: 200})
	if n != 101 || len(in.Exchanges()) != 1 {
		t.Fatalf("pre-reset n=%d exchanges=%d", n, len(in.Exchanges()))
	}
	// Force the overflow/order slow path so Reset must restore the dense
	// invariant too.
	in.SawRequest(&Request{ID: 99, URL: "https://oob.example/"})
	if len(in.Exchanges()) != 2 {
		t.Fatalf("overflow recording failed")
	}

	in.Reset()
	if len(in.Exchanges()) != 0 || in.Pending() != 0 {
		t.Fatalf("exchanges survived reset")
	}
	n = 0
	r2 := &Request{URL: "https://b.example/y"}
	r2.ID = in.NextID()
	if r2.ID != 1 {
		t.Fatalf("NextID after reset = %d, want 1", r2.ID)
	}
	in.SawRequest(r2)
	if n != 0 {
		t.Fatalf("old hooks survived reset: n = %d", n)
	}

	// A cancel issued before the reset must not unregister a hook the
	// reset inspector registered afterwards.
	in.OnRequest(func(*Request) { n++ })
	cancelOld()
	r3 := &Request{URL: "https://c.example/z"}
	r3.ID = in.NextID()
	in.SawRequest(r3)
	if n != 1 {
		t.Fatalf("stale cancel killed new hook: n = %d", n)
	}
	if got := len(in.Exchanges()); got != 2 {
		t.Fatalf("exchanges after reset = %d, want 2", got)
	}
}
