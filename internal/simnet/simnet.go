// Package simnet is the virtual-clock network environment: hosts are
// registered with handlers, requests incur sampled round-trip and service
// latencies, and everything executes deterministically on a discrete-event
// scheduler. A crawl of 35,000 pages — hours of simulated protocol time —
// completes in seconds of wall time, which is what makes regenerating
// every figure of the paper practical on a laptop.
package simnet

import (
	"strconv"
	"time"

	"headerbid/internal/clock"
	"headerbid/internal/rng"
	"headerbid/internal/urlkit"
	"headerbid/internal/webreq"
)

// Handler services one request at a virtual host. It returns the response
// body/status plus the server-side service time; the network adds
// transport latency around it.
type Handler func(req *webreq.Request) (status int, body string, service time.Duration)

// FaultMode injects transport-level failures for a host.
type FaultMode struct {
	// FailProb is the probability a request errors at transport level.
	FailProb float64
	// Err is the error string reported ("connection refused", ...).
	Err string
	// ExtraLatency is added to every request to this host.
	ExtraLatency time.Duration
}

// Resolver lazily supplies handlers for hosts that were not explicitly
// registered with Handle. The network consults it on the first request to
// an unknown host and memoizes the result, so a world with thousands of
// potential hosts only materializes handlers for the handful a visit
// actually contacts (see sitegen.InstallSimnetFor).
type Resolver interface {
	// Resolve maps a registrable-domain key to a handler; ok=false means
	// the host does not exist (dead DNS).
	Resolve(domainKey string) (h Handler, ok bool)
}

// BoundHandler is the closure-free form of Handler: a static function
// plus the receiver-style argument it is invoked with. Because func
// values and pointers are both pointer-shaped, building and memoizing a
// BoundHandler never allocates — unlike binding a closure per host per
// visit, which was one of the largest remaining allocation sites in the
// crawl profile (sitegen.(*visitResolver).Resolve, 5.6% of allocs).
type BoundHandler struct {
	Fn  func(req *webreq.Request, arg any) (status int, body string, service time.Duration)
	Arg any
}

func (h BoundHandler) call(req *webreq.Request) (int, string, time.Duration) {
	return h.Fn(req, h.Arg)
}

// runPlainHandler adapts a closure-style Handler to the BoundHandler
// calling convention, so the network stores one handler representation.
func runPlainHandler(req *webreq.Request, arg any) (int, string, time.Duration) {
	return arg.(Handler)(req)
}

// CallResolver is the closure-free analogue of Resolver: it yields a
// pre-bound (fn, arg) pair instead of materializing a closure per host.
type CallResolver interface {
	// ResolveCall maps a registrable-domain key to a bound handler;
	// ok=false means the host does not exist (dead DNS).
	ResolveCall(domainKey string) (h BoundHandler, ok bool)
}

// Network is a simulated internet: virtual hosts + latency model, driven
// by a shared scheduler.
type Network struct {
	Sched *clock.Scheduler

	hosts        map[string]BoundHandler
	resolver     Resolver
	callResolver CallResolver
	resolved     map[string]BoundHandler // memoized resolver hits; flushed by SetResolver/SetCallResolver
	faults       map[string]FaultMode
	rng      *rng.Stream
	seed     int64
	baseRTT  time.Duration
	jitter   time.Duration

	// Requests counts every Fetch, for traffic accounting.
	Requests int
}

// New creates a network on the given scheduler with the given seed.
// The fault table is created on first Fault call: the crawler builds one
// network per visit and almost never injects faults.
func New(sched *clock.Scheduler, seed int64) *Network {
	return &Network{
		Sched:   sched,
		hosts:   make(map[string]BoundHandler, 2),
		rng:     rng.New(seed),
		seed:    seed,
		baseRTT: 30 * time.Millisecond,
		jitter:  20 * time.Millisecond,
	}
}

// Seed returns the seed the network was created with, so server-side
// state built per network (per crawl visit) can derive independent but
// reproducible randomness.
func (n *Network) Seed() int64 { return n.seed }

// Reset returns the network to the state New(sched, seed) would produce,
// reusing the host and memoization tables' storage. The crawler pools
// one network per worker and resets it between clean-slate visits; the
// byte-identical-JSONL determinism suite is the proof no state survives
// the reset.
func (n *Network) Reset(seed int64) {
	clear(n.hosts)
	clear(n.resolved)
	n.resolver = nil
	n.callResolver = nil
	n.faults = nil
	n.rng.Reseed(seed)
	n.seed = seed
	n.baseRTT = 30 * time.Millisecond
	n.jitter = 20 * time.Millisecond
	n.Requests = 0
}

// SetRTT adjusts the base round-trip time and jitter of the network.
func (n *Network) SetRTT(base, jitter time.Duration) {
	n.baseRTT, n.jitter = base, jitter
}

// Handle registers (or replaces) a virtual host. Host matching is by
// exact lower-case hostname.
func (n *Network) Handle(host string, h Handler) {
	n.hosts[hostKey(host)] = BoundHandler{Fn: runPlainHandler, Arg: h}
}

// HandleCall registers a virtual host with a pre-bound handler (the
// closure-free registration form).
func (n *Network) HandleCall(host string, h BoundHandler) {
	n.hosts[hostKey(host)] = h
}

// HandleFunc is Handle with an inline function (symmetry with net/http).
func (n *Network) HandleFunc(host string, h func(req *webreq.Request) (int, string, time.Duration)) {
	n.Handle(host, h)
}

// SetResolver installs (or clears, with nil) the lazy host resolver.
// Explicit Handle registrations take precedence. Handlers memoized from
// a previous resolver are flushed, so re-installing a world (a new
// resolver bound to a new per-visit ecosystem) never serves handlers
// captured for the old one.
func (n *Network) SetResolver(r Resolver) {
	n.resolver = r
	clear(n.resolved) // storage is reused; the entries must not be
}

// SetCallResolver installs (or clears, with nil) the closure-free lazy
// resolver. It takes precedence over a Resolver when both are set, and
// flushes memoized handlers the same way SetResolver does.
func (n *Network) SetCallResolver(r CallResolver) {
	n.callResolver = r
	clear(n.resolved)
}

// lookup finds the handler for a registrable-domain key: the explicit
// host table first, then the memoized resolver results, then the
// resolvers themselves.
func (n *Network) lookup(key string) (BoundHandler, bool) {
	if h, ok := n.hosts[key]; ok {
		return h, true
	}
	if h, ok := n.resolved[key]; ok {
		return h, true
	}
	if n.callResolver != nil {
		if h, ok := n.callResolver.ResolveCall(key); ok {
			n.memoize(key, h)
			return h, true
		}
	}
	if n.resolver != nil {
		if h, ok := n.resolver.Resolve(key); ok {
			bh := BoundHandler{Fn: runPlainHandler, Arg: h}
			n.memoize(key, bh)
			return bh, true
		}
	}
	return BoundHandler{}, false
}

func (n *Network) memoize(key string, h BoundHandler) {
	if n.resolved == nil {
		n.resolved = make(map[string]BoundHandler, 16)
	}
	n.resolved[key] = h
}

// Fault installs a fault mode for a host.
func (n *Network) Fault(host string, f FaultMode) {
	if n.faults == nil {
		n.faults = make(map[string]FaultMode, 4)
	}
	n.faults[hostKey(host)] = f
}

// ClearFault removes a host's fault mode.
func (n *Network) ClearFault(host string) {
	delete(n.faults, hostKey(host))
}

// Hosts returns the number of registered hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

func hostKey(h string) string {
	return urlkit.RegistrableDomain(h)
}

// Env returns a browser.Env view of the network. All pages on one network
// share the scheduler (single logical thread), matching a single-browser
// crawl process.
func (n *Network) Env() *Env { return &Env{net: n} }

// Env adapts Network to the browser.Env interface.
type Env struct {
	net *Network
}

// Now returns the virtual time.
func (e *Env) Now() time.Time { return e.net.Sched.Now() }

// After schedules fn after d of virtual time.
func (e *Env) After(d time.Duration, fn func()) { e.net.Sched.After(d, fn) }

// Post schedules fn as soon as possible.
func (e *Env) Post(fn func()) { e.net.Sched.Post(fn) }

// netCall is the state of one in-flight simulated fetch. The fetch
// pipeline (arrive at server -> run handler -> deliver response) used to
// be a chain of closures, two per request; the whole chain now rides one
// struct through the scheduler's closure-free AfterCall path.
type netCall struct {
	net     *Network
	handler BoundHandler
	req     *webreq.Request
	cb      func(*webreq.Response) // plain callback (Fetch)
	cfn     func(*webreq.Response, any)
	carg    any // receiver-style callback (FetchCall)
	rtt     time.Duration
	resp    *webreq.Response // filled at the server, delivered at the page
	err     string           // transport failure; delivered instead of a response
}

// finish hands the response to whichever callback form the caller used.
func (nc *netCall) finish(resp *webreq.Response) {
	if nc.cb != nil {
		nc.cb(resp)
		return
	}
	nc.cfn(resp, nc.carg)
}

// netCallArrive runs when the request reaches the server (after rtt/2):
// the handler computes the response, and delivery is scheduled after the
// service time plus the return half of the RTT.
func netCallArrive(a any) {
	nc := a.(*netCall)
	status, body, service := nc.handler.call(nc.req)
	if service < 0 {
		service = 0
	}
	nc.resp = &webreq.Response{RequestID: nc.req.ID, Status: status, Body: body}
	nc.net.Sched.AfterCall(service+nc.rtt/2, netCallDeliver, nc)
}

func netCallDeliver(a any) {
	nc := a.(*netCall)
	nc.finish(nc.resp)
}

// netCallFail delivers a transport-level error.
func netCallFail(a any) {
	nc := a.(*netCall)
	nc.finish(&webreq.Response{RequestID: nc.req.ID, Err: nc.err})
}

// Fetch resolves the request's host, applies faults, runs the handler at
// the server after half an RTT, and delivers the response after service
// time plus the other half RTT. Unknown hosts fail like dead DNS.
func (e *Env) Fetch(req *webreq.Request, cb func(*webreq.Response)) {
	e.fetch(&netCall{net: e.net, req: req, cb: cb})
}

// FetchCall is Fetch with a receiver-style callback (fn(resp, arg)); it
// implements the browser's closure-free CallFetcher capability.
func (e *Env) FetchCall(req *webreq.Request, fn func(*webreq.Response, any), arg any) {
	e.fetch(&netCall{net: e.net, req: req, cfn: fn, carg: arg})
}

// AfterCall schedules fn(arg) after d of virtual time (the browser's
// closure-free CallScheduler capability).
func (e *Env) AfterCall(d time.Duration, fn func(any), arg any) {
	e.net.Sched.AfterCall(d, fn, arg)
}

func (e *Env) fetch(nc *netCall) {
	n := e.net
	req := nc.req
	n.Requests++
	host := req.Host()
	key := req.RegistrableHost()
	handler, ok := n.lookup(key)

	rtt := n.baseRTT
	if n.jitter > 0 {
		rtt += time.Duration(n.rng.Float64() * float64(n.jitter))
	}
	nc.rtt = rtt

	fault, hasFault := n.faults[key]
	if hasFault {
		nc.rtt += fault.ExtraLatency
	}

	if !ok {
		// Unresolvable host: error after a DNS-ish delay.
		nc.err = "no such host " + strconv.Quote(host)
		n.Sched.AfterCall(nc.rtt, netCallFail, nc)
		return
	}
	if hasFault && n.rng.Bool(fault.FailProb) {
		nc.err = fault.Err
		if nc.err == "" {
			nc.err = "connection reset"
		}
		n.Sched.AfterCall(nc.rtt, netCallFail, nc)
		return
	}

	// Request reaches the server after rtt/2; handler computes the
	// response and its service time; delivery lands rtt/2 after that.
	nc.handler = handler
	n.Sched.AfterCall(nc.rtt/2, netCallArrive, nc)
}
