// Package simnet is the virtual-clock network environment: hosts are
// registered with handlers, requests incur sampled round-trip and service
// latencies, and everything executes deterministically on a discrete-event
// scheduler. A crawl of 35,000 pages — hours of simulated protocol time —
// completes in seconds of wall time, which is what makes regenerating
// every figure of the paper practical on a laptop.
package simnet

import (
	"fmt"
	"time"

	"headerbid/internal/clock"
	"headerbid/internal/rng"
	"headerbid/internal/urlkit"
	"headerbid/internal/webreq"
)

// Handler services one request at a virtual host. It returns the response
// body/status plus the server-side service time; the network adds
// transport latency around it.
type Handler func(req *webreq.Request) (status int, body string, service time.Duration)

// FaultMode injects transport-level failures for a host.
type FaultMode struct {
	// FailProb is the probability a request errors at transport level.
	FailProb float64
	// Err is the error string reported ("connection refused", ...).
	Err string
	// ExtraLatency is added to every request to this host.
	ExtraLatency time.Duration
}

// Resolver lazily supplies handlers for hosts that were not explicitly
// registered with Handle. The network consults it on the first request to
// an unknown host and memoizes the result, so a world with thousands of
// potential hosts only materializes handlers for the handful a visit
// actually contacts (see sitegen.InstallSimnetFor).
type Resolver interface {
	// Resolve maps a registrable-domain key to a handler; ok=false means
	// the host does not exist (dead DNS).
	Resolve(domainKey string) (h Handler, ok bool)
}

// Network is a simulated internet: virtual hosts + latency model, driven
// by a shared scheduler.
type Network struct {
	Sched *clock.Scheduler

	hosts    map[string]Handler
	resolver Resolver
	resolved map[string]Handler // memoized resolver hits; flushed by SetResolver
	faults   map[string]FaultMode
	rng      *rng.Stream
	seed     int64
	baseRTT  time.Duration
	jitter   time.Duration

	// Requests counts every Fetch, for traffic accounting.
	Requests int
}

// New creates a network on the given scheduler with the given seed.
func New(sched *clock.Scheduler, seed int64) *Network {
	return &Network{
		Sched:   sched,
		hosts:   make(map[string]Handler),
		faults:  make(map[string]FaultMode),
		rng:     rng.New(seed),
		seed:    seed,
		baseRTT: 30 * time.Millisecond,
		jitter:  20 * time.Millisecond,
	}
}

// Seed returns the seed the network was created with, so server-side
// state built per network (per crawl visit) can derive independent but
// reproducible randomness.
func (n *Network) Seed() int64 { return n.seed }

// SetRTT adjusts the base round-trip time and jitter of the network.
func (n *Network) SetRTT(base, jitter time.Duration) {
	n.baseRTT, n.jitter = base, jitter
}

// Handle registers (or replaces) a virtual host. Host matching is by
// exact lower-case hostname.
func (n *Network) Handle(host string, h Handler) {
	n.hosts[hostKey(host)] = h
}

// HandleFunc is Handle with an inline function (symmetry with net/http).
func (n *Network) HandleFunc(host string, h func(req *webreq.Request) (int, string, time.Duration)) {
	n.Handle(host, h)
}

// SetResolver installs (or clears, with nil) the lazy host resolver.
// Explicit Handle registrations take precedence. Handlers memoized from
// a previous resolver are flushed, so re-installing a world (a new
// resolver bound to a new per-visit ecosystem) never serves handlers
// captured for the old one.
func (n *Network) SetResolver(r Resolver) {
	n.resolver = r
	n.resolved = nil
}

// lookup finds the handler for a registrable-domain key: the explicit
// host table first, then the memoized resolver results, then the
// resolver itself.
func (n *Network) lookup(key string) (Handler, bool) {
	if h, ok := n.hosts[key]; ok {
		return h, true
	}
	if h, ok := n.resolved[key]; ok {
		return h, true
	}
	if n.resolver != nil {
		if h, ok := n.resolver.Resolve(key); ok {
			if n.resolved == nil {
				n.resolved = make(map[string]Handler, 16)
			}
			n.resolved[key] = h
			return h, true
		}
	}
	return nil, false
}

// Fault installs a fault mode for a host.
func (n *Network) Fault(host string, f FaultMode) {
	n.faults[hostKey(host)] = f
}

// ClearFault removes a host's fault mode.
func (n *Network) ClearFault(host string) {
	delete(n.faults, hostKey(host))
}

// Hosts returns the number of registered hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

func hostKey(h string) string {
	return urlkit.RegistrableDomain(h)
}

// Env returns a browser.Env view of the network. All pages on one network
// share the scheduler (single logical thread), matching a single-browser
// crawl process.
func (n *Network) Env() *Env { return &Env{net: n} }

// Env adapts Network to the browser.Env interface.
type Env struct {
	net *Network
}

// Now returns the virtual time.
func (e *Env) Now() time.Time { return e.net.Sched.Now() }

// After schedules fn after d of virtual time.
func (e *Env) After(d time.Duration, fn func()) { e.net.Sched.After(d, fn) }

// Post schedules fn as soon as possible.
func (e *Env) Post(fn func()) { e.net.Sched.Post(fn) }

// Fetch resolves the request's host, applies faults, runs the handler at
// the server after half an RTT, and delivers the response after service
// time plus the other half RTT. Unknown hosts fail like dead DNS.
func (e *Env) Fetch(req *webreq.Request, cb func(*webreq.Response)) {
	n := e.net
	n.Requests++
	host := req.Host()
	key := req.RegistrableHost()
	handler, ok := n.lookup(key)

	rtt := n.baseRTT
	if n.jitter > 0 {
		rtt += time.Duration(n.rng.Float64() * float64(n.jitter))
	}

	fault, hasFault := n.faults[key]
	if hasFault {
		rtt += fault.ExtraLatency
	}

	if !ok {
		// Unresolvable host: error after a DNS-ish delay.
		n.Sched.After(rtt, func() {
			cb(&webreq.Response{RequestID: req.ID, Err: fmt.Sprintf("no such host %q", host)})
		})
		return
	}
	if hasFault && n.rng.Bool(fault.FailProb) {
		errStr := fault.Err
		if errStr == "" {
			errStr = "connection reset"
		}
		n.Sched.After(rtt, func() {
			cb(&webreq.Response{RequestID: req.ID, Err: errStr})
		})
		return
	}

	// Request reaches the server after rtt/2; handler computes the
	// response and its service time; delivery lands rtt/2 after that.
	n.Sched.After(rtt/2, func() {
		status, body, service := handler(req)
		if service < 0 {
			service = 0
		}
		n.Sched.After(service+rtt/2, func() {
			cb(&webreq.Response{RequestID: req.ID, Status: status, Body: body})
		})
	})
}
