// Package simnet is the virtual-clock network environment: hosts are
// registered with handlers, requests incur sampled round-trip and service
// latencies, and everything executes deterministically on a discrete-event
// scheduler. A crawl of 35,000 pages — hours of simulated protocol time —
// completes in seconds of wall time, which is what makes regenerating
// every figure of the paper practical on a laptop.
package simnet

import (
	"strconv"
	"time"

	"headerbid/internal/clock"
	"headerbid/internal/rng"
	"headerbid/internal/urlkit"
	"headerbid/internal/webreq"
)

// Handler services one request at a virtual host. It returns the response
// body/status plus the server-side service time; the network adds
// transport latency around it.
type Handler func(req *webreq.Request) (status int, body string, service time.Duration)

// FaultMode injects transport- and payload-level failures for a host —
// the mechanical side of the overlay.Fault vocabulary. All probabilistic
// draws come from a dedicated fault stream seeded from the visit seed,
// created lazily on the first draw: a fault-free visit takes zero extra
// draws and allocates nothing, so its output stays byte-identical to a
// network without fault support at all.
type FaultMode struct {
	// FailProb is the probability a request errors at transport level.
	FailProb float64
	// Err is the error string reported ("connection refused", ...).
	Err string
	// ExtraLatency is added to every request to this host.
	ExtraLatency time.Duration

	// SpikeProb adds SpikeLatency (default 1s) to the round trip with
	// this probability.
	SpikeProb    float64
	SpikeLatency time.Duration

	// SlowLorisProb delays response delivery by SlowLorisStretch
	// (default 15s) with this probability: the handler runs, but the
	// body trickles in.
	SlowLorisProb    float64
	SlowLorisStretch time.Duration

	// ResetMidBodyProb fails the request with this probability *after*
	// the handler ran: the client waits out the service time, then gets
	// a transport error instead of the body.
	ResetMidBodyProb float64

	// TruncateProb cuts the response body to a random prefix with this
	// probability (malformed payload).
	TruncateProb float64

	// GarbleProb injects a foreign field at the front of a JSON object
	// body with this probability (valid JSON, unknown shape).
	GarbleProb float64

	// OutageStart/OutageDuration: every request whose virtual elapsed
	// time since the network's last Reset falls in [OutageStart,
	// OutageStart+OutageDuration) fails. Draw-free.
	OutageStart    time.Duration
	OutageDuration time.Duration

	// FlapPeriod alternates the host up/down with this period, up
	// first. Draw-free.
	FlapPeriod time.Duration

	// RampPerSecond adds failure probability per elapsed virtual second
	// on top of FailProb.
	RampPerSecond float64
}

// Resolver lazily supplies handlers for hosts that were not explicitly
// registered with Handle. The network consults it on the first request to
// an unknown host and memoizes the result, so a world with thousands of
// potential hosts only materializes handlers for the handful a visit
// actually contacts (see sitegen.InstallSimnetFor).
type Resolver interface {
	// Resolve maps a registrable-domain key to a handler; ok=false means
	// the host does not exist (dead DNS).
	Resolve(domainKey string) (h Handler, ok bool)
}

// BoundHandler is the closure-free form of Handler: a static function
// plus the receiver-style argument it is invoked with. Because func
// values and pointers are both pointer-shaped, building and memoizing a
// BoundHandler never allocates — unlike binding a closure per host per
// visit, which was one of the largest remaining allocation sites in the
// crawl profile (sitegen.(*visitResolver).Resolve, 5.6% of allocs).
type BoundHandler struct {
	Fn  func(req *webreq.Request, arg any) (status int, body string, service time.Duration)
	Arg any
}

func (h BoundHandler) call(req *webreq.Request) (int, string, time.Duration) {
	return h.Fn(req, h.Arg)
}

// runPlainHandler adapts a closure-style Handler to the BoundHandler
// calling convention, so the network stores one handler representation.
func runPlainHandler(req *webreq.Request, arg any) (int, string, time.Duration) {
	return arg.(Handler)(req)
}

// CallResolver is the closure-free analogue of Resolver: it yields a
// pre-bound (fn, arg) pair instead of materializing a closure per host.
type CallResolver interface {
	// ResolveCall maps a registrable-domain key to a bound handler;
	// ok=false means the host does not exist (dead DNS).
	ResolveCall(domainKey string) (h BoundHandler, ok bool)
}

// Network is a simulated internet: virtual hosts + latency model, driven
// by a shared scheduler.
type Network struct {
	Sched *clock.Scheduler

	hosts        map[string]BoundHandler
	resolver     Resolver
	callResolver CallResolver
	resolved     map[string]BoundHandler // memoized resolver hits; flushed by SetResolver/SetCallResolver
	faults       map[string]FaultMode
	rng          *rng.Stream
	frng         *rng.Stream // fault draws only; lazily created, see frand
	seed         int64
	start        time.Time // virtual time of New/Reset; outage/flap/ramp reference
	baseRTT      time.Duration
	jitter       time.Duration

	// Requests counts every Fetch, for traffic accounting. BytesOut and
	// BytesIn are the virtual wire volume: request URL+payload bytes
	// out, response payload bytes in (whatever survives faulting). Plain
	// int adds on the visit-private network — always on, harvested into
	// the obs telemetry registry once per visit.
	Requests int
	BytesOut int
	BytesIn  int
}

// New creates a network on the given scheduler with the given seed.
// The fault table is created on first Fault call: the crawler builds one
// network per visit and almost never injects faults.
func New(sched *clock.Scheduler, seed int64) *Network {
	return &Network{
		Sched:   sched,
		hosts:   make(map[string]BoundHandler, 2),
		rng:     rng.New(seed),
		seed:    seed,
		start:   sched.Now(),
		baseRTT: 30 * time.Millisecond,
		jitter:  20 * time.Millisecond,
	}
}

// Seed returns the seed the network was created with, so server-side
// state built per network (per crawl visit) can derive independent but
// reproducible randomness.
func (n *Network) Seed() int64 { return n.seed }

// Reset returns the network to the state New(sched, seed) would produce,
// reusing the host and memoization tables' storage. The crawler pools
// one network per worker and resets it between clean-slate visits; the
// byte-identical-JSONL determinism suite is the proof no state survives
// the reset.
func (n *Network) Reset(seed int64) {
	clear(n.hosts)
	clear(n.resolved)
	n.resolver = nil
	n.callResolver = nil
	n.faults = nil
	n.rng.Reseed(seed)
	if n.frng != nil {
		// Reseed rather than drop: a pooled worker that injected faults
		// on a previous visit must draw the exact sequence a fresh
		// network would (see frand), and keeping the stream avoids an
		// allocation per faulted visit.
		n.frng.Reseed(seed ^ faultSeedMix)
	}
	n.seed = seed
	n.start = n.Sched.Now()
	n.baseRTT = 30 * time.Millisecond
	n.jitter = 20 * time.Millisecond
	n.Requests = 0
	n.BytesOut = 0
	n.BytesIn = 0
}

// SetRTT adjusts the base round-trip time and jitter of the network.
func (n *Network) SetRTT(base, jitter time.Duration) {
	n.baseRTT, n.jitter = base, jitter
}

// Handle registers (or replaces) a virtual host. Host matching is by
// exact lower-case hostname.
func (n *Network) Handle(host string, h Handler) {
	n.hosts[hostKey(host)] = BoundHandler{Fn: runPlainHandler, Arg: h}
}

// HandleCall registers a virtual host with a pre-bound handler (the
// closure-free registration form).
func (n *Network) HandleCall(host string, h BoundHandler) {
	n.hosts[hostKey(host)] = h
}

// HandleFunc is Handle with an inline function (symmetry with net/http).
func (n *Network) HandleFunc(host string, h func(req *webreq.Request) (int, string, time.Duration)) {
	n.Handle(host, h)
}

// SetResolver installs (or clears, with nil) the lazy host resolver.
// Explicit Handle registrations take precedence. Handlers memoized from
// a previous resolver are flushed, so re-installing a world (a new
// resolver bound to a new per-visit ecosystem) never serves handlers
// captured for the old one.
func (n *Network) SetResolver(r Resolver) {
	n.resolver = r
	clear(n.resolved) // storage is reused; the entries must not be
}

// SetCallResolver installs (or clears, with nil) the closure-free lazy
// resolver. It takes precedence over a Resolver when both are set, and
// flushes memoized handlers the same way SetResolver does.
func (n *Network) SetCallResolver(r CallResolver) {
	n.callResolver = r
	clear(n.resolved)
}

// lookup finds the handler for a registrable-domain key: the explicit
// host table first, then the memoized resolver results, then the
// resolvers themselves.
func (n *Network) lookup(key string) (BoundHandler, bool) {
	if h, ok := n.hosts[key]; ok {
		return h, true
	}
	if h, ok := n.resolved[key]; ok {
		return h, true
	}
	if n.callResolver != nil {
		if h, ok := n.callResolver.ResolveCall(key); ok {
			n.memoize(key, h)
			return h, true
		}
	}
	if n.resolver != nil {
		if h, ok := n.resolver.Resolve(key); ok {
			bh := BoundHandler{Fn: runPlainHandler, Arg: h}
			n.memoize(key, bh)
			return bh, true
		}
	}
	return BoundHandler{}, false
}

func (n *Network) memoize(key string, h BoundHandler) {
	if n.resolved == nil {
		n.resolved = make(map[string]BoundHandler, 16)
	}
	n.resolved[key] = h
}

// Fault installs a fault mode for a host.
func (n *Network) Fault(host string, f FaultMode) {
	if n.faults == nil {
		n.faults = make(map[string]FaultMode, 4)
	}
	n.faults[hostKey(host)] = f
}

// ClearFault removes a host's fault mode.
func (n *Network) ClearFault(host string) {
	delete(n.faults, hostKey(host))
}

// faultSeedMix separates the fault stream from the latency-jitter
// stream: fault draws must not perturb the RTT sequence of requests to
// healthy hosts, or a single faulted partner would shift every other
// latency in the visit and the "same seed, fault-free" baseline would
// no longer be a controlled comparison.
const faultSeedMix = 0x5fe7eea7c2b6db15

// frand returns the fault-draw stream, creating it on first use. The
// lazy creation plus the Reset reseed above guarantee the k-th fault
// draw of a visit is identical whether the network is fresh or pooled.
func (n *Network) frand() *rng.Stream {
	if n.frng == nil {
		n.frng = rng.New(n.seed ^ faultSeedMix)
	}
	return n.frng
}

// applyFault evaluates a host's fault mode for one request. It returns
// true when the request fails before reaching the server (nc.err set);
// otherwise it may stretch nc.rtt and arm payload effects on nc
// (truncation, garbling, mid-body reset, slow-loris delay). Draws are
// taken in a fixed order, each gated only on the fault's configuration —
// never on another draw's outcome — so the stream position after k
// requests is a pure function of (seed, fault config, request order).
func (n *Network) applyFault(nc *netCall, f *FaultMode) bool {
	nc.rtt += f.ExtraLatency

	// Availability windows are functions of virtual time alone.
	elapsed := n.Sched.Now().Sub(n.start)
	if f.OutageDuration > 0 && elapsed >= f.OutageStart && elapsed < f.OutageStart+f.OutageDuration {
		nc.err = faultErrString(f, "connection refused")
		return true
	}
	if f.FlapPeriod > 0 && (elapsed/f.FlapPeriod)%2 == 1 {
		nc.err = faultErrString(f, "connection refused")
		return true
	}

	if p := f.FailProb + f.RampPerSecond*elapsed.Seconds(); p > 0 && n.frand().Bool(p) {
		nc.err = faultErrString(f, "connection reset")
		return true
	}
	if f.SpikeProb > 0 && n.frand().Bool(f.SpikeProb) {
		if f.SpikeLatency > 0 {
			nc.rtt += f.SpikeLatency
		} else {
			nc.rtt += time.Second
		}
	}
	if f.SlowLorisProb > 0 && n.frand().Bool(f.SlowLorisProb) {
		if f.SlowLorisStretch > 0 {
			nc.slow = f.SlowLorisStretch
		} else {
			nc.slow = 15 * time.Second
		}
	}
	if f.ResetMidBodyProb > 0 && n.frand().Bool(f.ResetMidBodyProb) {
		nc.resetMid = true
		nc.err = faultErrString(f, "connection reset mid-body")
	}
	if f.TruncateProb > 0 && n.frand().Bool(f.TruncateProb) {
		// Keep a meaningful prefix so the payload is plausibly partial
		// rather than empty: 15–85% of the body survives.
		nc.truncFrac = 0.15 + 0.7*n.frand().Float64()
	}
	if f.GarbleProb > 0 && n.frand().Bool(f.GarbleProb) {
		nc.garble = true
	}
	return false
}

func faultErrString(f *FaultMode, def string) string {
	if f.Err != "" {
		return f.Err
	}
	return def
}

// garbleBody prepends a foreign field to a JSON object body, keeping it
// valid JSON of an unknown shape — the payload class that must push the
// rtb codec off its all-or-nothing fast path and onto encoding/json.
func garbleBody(body string) string {
	if len(body) < 2 || body[0] != '{' {
		return body
	}
	if body[1] == '}' {
		return `{"x_chaos":1}` + body[2:]
	}
	return `{"x_chaos":1,` + body[1:]
}

// Hosts returns the number of registered hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

func hostKey(h string) string {
	return urlkit.RegistrableDomain(h)
}

// Env returns a browser.Env view of the network. All pages on one network
// share the scheduler (single logical thread), matching a single-browser
// crawl process.
func (n *Network) Env() *Env { return &Env{net: n} }

// Env adapts Network to the browser.Env interface.
type Env struct {
	net *Network
}

// Now returns the virtual time.
func (e *Env) Now() time.Time { return e.net.Sched.Now() }

// After schedules fn after d of virtual time.
func (e *Env) After(d time.Duration, fn func()) { e.net.Sched.After(d, fn) }

// Post schedules fn as soon as possible.
func (e *Env) Post(fn func()) { e.net.Sched.Post(fn) }

// netCall is the state of one in-flight simulated fetch. The fetch
// pipeline (arrive at server -> run handler -> deliver response) used to
// be a chain of closures, two per request; the whole chain now rides one
// struct through the scheduler's closure-free AfterCall path.
type netCall struct {
	net     *Network
	handler BoundHandler
	req     *webreq.Request
	cb      func(*webreq.Response) // plain callback (Fetch)
	cfn     func(*webreq.Response, any)
	carg    any // receiver-style callback (FetchCall)
	rtt     time.Duration
	resp    *webreq.Response // filled at the server, delivered at the page
	err     string           // transport failure; delivered instead of a response

	// Armed fault effects (applyFault); all zero on the fault-free path.
	slow      time.Duration // slow-loris: extra delay before delivery
	truncFrac float64       // truncate body to this fraction when > 0
	garble    bool          // rewrite body with a foreign JSON field
	resetMid  bool          // fail after the handler ran (err above)
}

// finish hands the response to whichever callback form the caller used.
func (nc *netCall) finish(resp *webreq.Response) {
	if nc.cb != nil {
		nc.cb(resp)
		return
	}
	nc.cfn(resp, nc.carg)
}

// netCallArrive runs when the request reaches the server (after rtt/2):
// the handler computes the response, and delivery is scheduled after the
// service time plus the return half of the RTT.
func netCallArrive(a any) {
	nc := a.(*netCall)
	status, body, service := nc.handler.call(nc.req)
	if service < 0 {
		service = 0
	}
	delay := service + nc.rtt/2 + nc.slow
	if nc.resetMid {
		// The server committed to a response; the connection died while
		// it was in flight. The client pays the full wait and gets a
		// transport error instead of a body.
		nc.net.Sched.AfterCall(delay, netCallFail, nc)
		return
	}
	if nc.truncFrac > 0 && len(body) > 0 {
		body = body[:int(float64(len(body))*nc.truncFrac)]
	}
	if nc.garble {
		body = garbleBody(body)
	}
	nc.net.BytesIn += len(body)
	nc.resp = &webreq.Response{RequestID: nc.req.ID, Status: status, Body: body}
	nc.net.Sched.AfterCall(delay, netCallDeliver, nc)
}

func netCallDeliver(a any) {
	nc := a.(*netCall)
	nc.finish(nc.resp)
}

// netCallFail delivers a transport-level error.
func netCallFail(a any) {
	nc := a.(*netCall)
	nc.finish(&webreq.Response{RequestID: nc.req.ID, Err: nc.err})
}

// Fetch resolves the request's host, applies faults, runs the handler at
// the server after half an RTT, and delivers the response after service
// time plus the other half RTT. Unknown hosts fail like dead DNS.
func (e *Env) Fetch(req *webreq.Request, cb func(*webreq.Response)) {
	e.fetch(&netCall{net: e.net, req: req, cb: cb})
}

// FetchCall is Fetch with a receiver-style callback (fn(resp, arg)); it
// implements the browser's closure-free CallFetcher capability.
func (e *Env) FetchCall(req *webreq.Request, fn func(*webreq.Response, any), arg any) {
	e.fetch(&netCall{net: e.net, req: req, cfn: fn, carg: arg})
}

// AfterCall schedules fn(arg) after d of virtual time (the browser's
// closure-free CallScheduler capability).
func (e *Env) AfterCall(d time.Duration, fn func(any), arg any) {
	e.net.Sched.AfterCall(d, fn, arg)
}

func (e *Env) fetch(nc *netCall) {
	n := e.net
	req := nc.req
	n.Requests++
	n.BytesOut += len(req.URL) + len(req.Body)
	host := req.Host()
	key := req.RegistrableHost()
	handler, ok := n.lookup(key)

	rtt := n.baseRTT
	if n.jitter > 0 {
		rtt += time.Duration(n.rng.Float64() * float64(n.jitter))
	}
	nc.rtt = rtt

	if fault, hasFault := n.faults[key]; hasFault {
		if n.applyFault(nc, &fault) {
			n.Sched.AfterCall(nc.rtt, netCallFail, nc)
			return
		}
	}

	if !ok {
		// Unresolvable host: error after a DNS-ish delay.
		nc.err = "no such host " + strconv.Quote(host)
		n.Sched.AfterCall(nc.rtt, netCallFail, nc)
		return
	}

	// Request reaches the server after rtt/2; handler computes the
	// response and its service time; delivery lands rtt/2 after that.
	nc.handler = handler
	n.Sched.AfterCall(nc.rtt/2, netCallArrive, nc)
}
