package simnet

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"headerbid/internal/clock"
	"headerbid/internal/webreq"
)

// Tests for the fault vocabulary (outage windows, flapping, payload
// corruption, mid-body resets, slow-loris, error ramps) and for the
// pooled-network guarantee: Reset leaves no fault — and no fault-stream
// position — behind for the next visit.

func handleBody(n *Network, host, body string, service time.Duration) {
	n.Handle(host, func(req *webreq.Request) (int, string, time.Duration) {
		return 200, body, service
	})
}

// fetchAt schedules one fetch at virtual offset d and records the
// response under the given label.
func fetchAt(env *Env, d time.Duration, url string, got map[string]*webreq.Response, label string) {
	env.After(d, func() {
		env.Fetch(&webreq.Request{ID: int64(len(got) + 1), URL: url}, func(r *webreq.Response) {
			got[label] = r
		})
	})
}

func TestFaultOutageWindowRecovers(t *testing.T) {
	n, sched := newNet()
	n.SetRTT(10*time.Millisecond, 0)
	handleBody(n, "part.example", "ok", 0)
	n.Fault("part.example", FaultMode{OutageStart: time.Second, OutageDuration: 5 * time.Second})

	got := map[string]*webreq.Response{}
	env := n.Env()
	fetchAt(env, 0, "https://part.example/", got, "before")
	fetchAt(env, 3*time.Second, "https://part.example/", got, "during")
	fetchAt(env, 7*time.Second, "https://part.example/", got, "after")
	sched.Run()

	if r := got["before"]; r == nil || !r.OK() {
		t.Fatalf("before outage: %+v", got["before"])
	}
	if r := got["during"]; r == nil || r.Err == "" {
		t.Fatalf("during outage window should refuse: %+v", got["during"])
	}
	if r := got["after"]; r == nil || !r.OK() {
		t.Fatalf("after outage window should recover: %+v", got["after"])
	}
}

func TestFaultFlapAlternates(t *testing.T) {
	n, sched := newNet()
	n.SetRTT(10*time.Millisecond, 0)
	handleBody(n, "part.example", "ok", 0)
	n.Fault("part.example", FaultMode{FlapPeriod: 2 * time.Second})

	got := map[string]*webreq.Response{}
	env := n.Env()
	fetchAt(env, 500*time.Millisecond, "https://part.example/", got, "up1")
	fetchAt(env, 2500*time.Millisecond, "https://part.example/", got, "down1")
	fetchAt(env, 4500*time.Millisecond, "https://part.example/", got, "up2")
	fetchAt(env, 6500*time.Millisecond, "https://part.example/", got, "down2")
	sched.Run()

	for _, label := range []string{"up1", "up2"} {
		if r := got[label]; r == nil || !r.OK() {
			t.Fatalf("%s: flapping host should be up: %+v", label, got[label])
		}
	}
	for _, label := range []string{"down1", "down2"} {
		if r := got[label]; r == nil || r.Err == "" {
			t.Fatalf("%s: flapping host should be down: %+v", label, got[label])
		}
	}
}

func TestFaultTruncateCutsBody(t *testing.T) {
	n, sched := newNet()
	const body = `{"id":"auction-1","seatbid":[{"bid":[{"price":1.25}]}]}`
	handleBody(n, "part.example", body, 0)
	n.Fault("part.example", FaultMode{TruncateProb: 1})

	var resp *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 1, URL: "https://part.example/"}, func(r *webreq.Response) { resp = r })
	sched.Run()
	if resp == nil || resp.Err != "" || resp.Status != 200 {
		t.Fatalf("truncation must not become a transport error: %+v", resp)
	}
	if len(resp.Body) >= len(body) || !strings.HasPrefix(body, resp.Body) {
		t.Fatalf("body should be a strict prefix: %q", resp.Body)
	}
}

func TestFaultGarbleKeepsValidJSON(t *testing.T) {
	n, sched := newNet()
	handleBody(n, "part.example", `{"id":"a"}`, 0)
	n.Fault("part.example", FaultMode{GarbleProb: 1})

	var resp *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 1, URL: "https://part.example/"}, func(r *webreq.Response) { resp = r })
	sched.Run()
	if resp == nil || !resp.OK() {
		t.Fatalf("garbling must not become a transport error: %+v", resp)
	}
	if resp.Body != `{"x_chaos":1,"id":"a"}` {
		t.Fatalf("garbled body = %q", resp.Body)
	}
}

func TestGarbleBodyEdgeCases(t *testing.T) {
	cases := map[string]string{
		`{}`:      `{"x_chaos":1}`,
		`{"a":1}`: `{"x_chaos":1,"a":1}`,
		`[1,2]`:   `[1,2]`, // non-object: untouched
		``:        ``,
		`x`:       `x`,
	}
	for in, want := range cases {
		if got := garbleBody(in); got != want {
			t.Errorf("garbleBody(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFaultResetMidBodyPaysFullWait(t *testing.T) {
	n, sched := newNet()
	n.SetRTT(40*time.Millisecond, 0)
	handleBody(n, "part.example", "never-seen", 100*time.Millisecond)
	n.Fault("part.example", FaultMode{ResetMidBodyProb: 1})

	env := n.Env()
	start := env.Now()
	var resp *webreq.Response
	var done time.Time
	env.Fetch(&webreq.Request{ID: 1, URL: "https://part.example/"}, func(r *webreq.Response) {
		resp, done = r, env.Now()
	})
	sched.Run()
	if resp == nil || resp.Err == "" || resp.Body != "" {
		t.Fatalf("mid-body reset should error with no body: %+v", resp)
	}
	// The client waits out rtt + service before learning the connection
	// died — unlike an up-front refusal, which costs one rtt.
	if elapsed := done.Sub(start); elapsed != 140*time.Millisecond {
		t.Fatalf("elapsed = %v, want 140ms (full rtt + service)", elapsed)
	}
}

func TestFaultSlowLorisDelaysDelivery(t *testing.T) {
	n, sched := newNet()
	n.SetRTT(40*time.Millisecond, 0)
	handleBody(n, "part.example", "ok", 0)
	n.Fault("part.example", FaultMode{SlowLorisProb: 1, SlowLorisStretch: 2 * time.Second})

	env := n.Env()
	start := env.Now()
	var resp *webreq.Response
	var done time.Time
	env.Fetch(&webreq.Request{ID: 1, URL: "https://part.example/"}, func(r *webreq.Response) {
		resp, done = r, env.Now()
	})
	sched.Run()
	if resp == nil || !resp.OK() || resp.Body != "ok" {
		t.Fatalf("slow-loris should still deliver: %+v", resp)
	}
	if elapsed := done.Sub(start); elapsed != 2040*time.Millisecond {
		t.Fatalf("elapsed = %v, want 2.04s (rtt + stretch)", elapsed)
	}
}

func TestFaultRampEscalates(t *testing.T) {
	n, sched := newNet()
	n.SetRTT(10*time.Millisecond, 0)
	handleBody(n, "part.example", "ok", 0)
	n.Fault("part.example", FaultMode{RampPerSecond: 0.1})

	got := map[string]*webreq.Response{}
	env := n.Env()
	// At t=0 the ramp contributes probability zero: no draw, no failure.
	fetchAt(env, 0, "https://part.example/", got, "start")
	// At t=20s the ramp has passed certainty.
	fetchAt(env, 20*time.Second, "https://part.example/", got, "later")
	sched.Run()
	if r := got["start"]; r == nil || !r.OK() {
		t.Fatalf("ramp at t=0 must be a no-op: %+v", got["start"])
	}
	if r := got["later"]; r == nil || r.Err == "" {
		t.Fatalf("ramp past certainty should fail: %+v", got["later"])
	}
}

// faultSeq runs a fixed request schedule against a host with the given
// fault mode installed and returns one line per response: outcome, body
// and delivery time — everything an observer downstream could see.
func faultSeq(n *Network, sched *clock.Scheduler) []string {
	handleBody(n, "part.example", `{"id":"a","price":1.5}`, 20*time.Millisecond)
	n.Fault("part.example", FaultMode{
		FailProb:  0.3,
		SpikeProb: 0.3, SpikeLatency: 800 * time.Millisecond,
		TruncateProb: 0.3,
		GarbleProb:   0.3,
	})
	env := n.Env()
	var out []string
	for i := 0; i < 24; i++ {
		id := int64(i + 1)
		env.After(time.Duration(i)*50*time.Millisecond, func() {
			env.Fetch(&webreq.Request{ID: id, URL: "https://part.example/hb"}, func(r *webreq.Response) {
				out = append(out, strconv.FormatInt(r.RequestID, 10)+" "+r.Err+" "+r.Body+" "+
					env.Now().Format(time.RFC3339Nano))
			})
		})
	}
	sched.Run()
	return out
}

// TestFaultStreamResetNoLeak is the pooled-reuse regression: a network
// that injected faults mid-run and was then Reset must replay the exact
// fault-draw sequence a fresh network produces — stream position,
// payload corruption and timing included. This is the property that
// makes pooled crawl workers byte-identical to fresh ones under chaos.
func TestFaultStreamResetNoLeak(t *testing.T) {
	const seed = 7

	fresh := func() []string {
		sched := clock.NewScheduler(time.Time{})
		return faultSeq(New(sched, seed), sched)
	}

	polluted := func() []string {
		sched := clock.NewScheduler(time.Time{})
		n := New(sched, 99)
		// A previous "visit" with a different fault regime, advancing the
		// fault stream and leaving a fault installed when it ends.
		handleBody(n, "other.example", "x", 0)
		n.Fault("other.example", FaultMode{FailProb: 0.9, SlowLorisProb: 0.5})
		env := n.Env()
		for i := 0; i < 9; i++ {
			env.Fetch(&webreq.Request{ID: int64(i + 100), URL: "https://other.example/"}, func(*webreq.Response) {})
		}
		sched.Run()

		sched.Reset(time.Time{})
		n.Reset(seed)
		return faultSeq(n, sched)
	}

	a, b := fresh(), polluted()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("pooled network diverged from fresh after Reset:\nfresh:\n%s\npooled:\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}

// TestFaultClearedByReset: the fault table itself must not survive a
// Reset — the next visit starts fault-free.
func TestFaultClearedByReset(t *testing.T) {
	n, sched := newNet()
	handleBody(n, "part.example", "ok", 0)
	n.Fault("part.example", FaultMode{FailProb: 1})

	var resp *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 1, URL: "https://part.example/"}, func(r *webreq.Response) { resp = r })
	sched.Run()
	if resp == nil || resp.Err == "" {
		t.Fatalf("fault not active before reset: %+v", resp)
	}

	sched.Reset(time.Time{})
	n.Reset(1)
	handleBody(n, "part.example", "ok", 0)
	var resp2 *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 2, URL: "https://part.example/"}, func(r *webreq.Response) { resp2 = r })
	sched.Run()
	if resp2 == nil || !resp2.OK() {
		t.Fatalf("fault leaked across Reset: %+v", resp2)
	}
}

// TestFaultDrawsDoNotPerturbHealthyHosts: the property behind the
// dedicated fault stream — installing a fault on one host must not
// shift the latency jitter sequence of requests to other hosts, or a
// chaos variant's "unaffected" sites would silently drift from the
// baseline.
func TestFaultDrawsDoNotPerturbHealthyHosts(t *testing.T) {
	timings := func(withFault bool) []time.Duration {
		sched := clock.NewScheduler(time.Time{})
		n := New(sched, 42)
		handleBody(n, "healthy.example", "ok", 0)
		handleBody(n, "faulty.example", "ok", 0)
		if withFault {
			n.Fault("faulty.example", FaultMode{FailProb: 0.5, SpikeProb: 0.5, TruncateProb: 0.5})
		}
		env := n.Env()
		var out []time.Duration
		for i := 0; i < 16; i++ {
			// Interleave so any shared-stream coupling would show up. The
			// comparison is each healthy request's own latency: fault
			// effects legitimately move the global timeline (spikes push
			// the clock further), but the jitter drawn for a healthy
			// request must not depend on fault draws.
			issued := env.Now()
			env.Fetch(&webreq.Request{ID: int64(2*i + 1), URL: "https://faulty.example/"}, func(*webreq.Response) {})
			env.Fetch(&webreq.Request{ID: int64(2*i + 2), URL: "https://healthy.example/"}, func(r *webreq.Response) {
				out = append(out, env.Now().Sub(issued))
			})
			sched.Run()
		}
		return out
	}

	plain, chaotic := timings(false), timings(true)
	if len(plain) != len(chaotic) {
		t.Fatalf("healthy deliveries differ: %d vs %d", len(plain), len(chaotic))
	}
	for i := range plain {
		if plain[i] != chaotic[i] {
			t.Fatalf("healthy-host timing %d perturbed by fault draws: %v vs %v", i, plain[i], chaotic[i])
		}
	}
}
