package simnet

import (
	"testing"
	"time"

	"headerbid/internal/clock"
	"headerbid/internal/webreq"
)

func newNet() (*Network, *clock.Scheduler) {
	sched := clock.NewScheduler(time.Time{})
	return New(sched, 1), sched
}

func TestFetchRoundTrip(t *testing.T) {
	n, sched := newNet()
	n.SetRTT(40*time.Millisecond, 0)
	n.Handle("adnxs.com", func(req *webreq.Request) (int, string, time.Duration) {
		return 200, "pong", 100 * time.Millisecond
	})
	env := n.Env()
	start := env.Now()
	var resp *webreq.Response
	env.Fetch(&webreq.Request{ID: 1, URL: "https://bid.adnxs.com/hb/v1/bid"}, func(r *webreq.Response) {
		resp = r
	})
	sched.Run()
	if resp == nil || !resp.OK() || resp.Body != "pong" {
		t.Fatalf("resp = %+v", resp)
	}
	elapsed := env.Now().Sub(start)
	if elapsed != 140*time.Millisecond { // rtt + service
		t.Fatalf("elapsed = %v, want 140ms", elapsed)
	}
}

func TestSubdomainRouting(t *testing.T) {
	n, sched := newNet()
	n.Handle("adnxs.com", func(req *webreq.Request) (int, string, time.Duration) {
		return 200, "ok", 0
	})
	var got *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 2, URL: "https://deep.sub.adnxs.com/x"}, func(r *webreq.Response) { got = r })
	sched.Run()
	if got == nil || !got.OK() {
		t.Fatalf("subdomain not routed to registrable-domain handler: %+v", got)
	}
}

func TestUnknownHostErrors(t *testing.T) {
	n, sched := newNet()
	var resp *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 3, URL: "https://ghost.example/x"}, func(r *webreq.Response) { resp = r })
	sched.Run()
	if resp == nil || resp.Err == "" {
		t.Fatalf("unknown host should error: %+v", resp)
	}
}

func TestFaultInjectionFailProb(t *testing.T) {
	n, sched := newNet()
	n.Handle("flaky.example", func(req *webreq.Request) (int, string, time.Duration) {
		return 200, "ok", 0
	})
	n.Fault("flaky.example", FaultMode{FailProb: 1, Err: "injected reset"})
	var resp *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 4, URL: "https://flaky.example/"}, func(r *webreq.Response) { resp = r })
	sched.Run()
	if resp == nil || resp.Err != "injected reset" {
		t.Fatalf("fault not injected: %+v", resp)
	}
	n.ClearFault("flaky.example")
	var resp2 *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 5, URL: "https://flaky.example/"}, func(r *webreq.Response) { resp2 = r })
	sched.Run()
	if resp2 == nil || !resp2.OK() {
		t.Fatalf("fault not cleared: %+v", resp2)
	}
}

func TestFaultExtraLatency(t *testing.T) {
	n, sched := newNet()
	n.SetRTT(10*time.Millisecond, 0)
	n.Handle("slow.example", func(req *webreq.Request) (int, string, time.Duration) {
		return 200, "ok", 0
	})
	n.Fault("slow.example", FaultMode{ExtraLatency: 500 * time.Millisecond})
	env := n.Env()
	start := env.Now()
	var done time.Time
	env.Fetch(&webreq.Request{ID: 6, URL: "https://slow.example/"}, func(*webreq.Response) {
		done = env.Now()
	})
	sched.Run()
	if done.Sub(start) < 500*time.Millisecond {
		t.Fatalf("extra latency not applied: %v", done.Sub(start))
	}
}

func TestNegativeServiceClamped(t *testing.T) {
	n, sched := newNet()
	n.Handle("x.example", func(req *webreq.Request) (int, string, time.Duration) {
		return 200, "ok", -time.Hour
	})
	var resp *webreq.Response
	n.Env().Fetch(&webreq.Request{ID: 7, URL: "https://x.example/"}, func(r *webreq.Response) { resp = r })
	sched.Run()
	if resp == nil || !resp.OK() {
		t.Fatalf("negative service broke delivery: %+v", resp)
	}
}

func TestRequestsCounted(t *testing.T) {
	n, sched := newNet()
	n.Handle("x.example", func(req *webreq.Request) (int, string, time.Duration) { return 200, "", 0 })
	env := n.Env()
	for i := 0; i < 5; i++ {
		env.Fetch(&webreq.Request{ID: int64(i + 10), URL: "https://x.example/"}, func(*webreq.Response) {})
	}
	sched.Run()
	if n.Requests != 5 {
		t.Fatalf("requests = %d", n.Requests)
	}
	if n.Hosts() != 1 {
		t.Fatalf("hosts = %d", n.Hosts())
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() time.Duration {
		n, sched := newNet()
		n.Handle("x.example", func(req *webreq.Request) (int, string, time.Duration) {
			return 200, "", 7 * time.Millisecond
		})
		env := n.Env()
		start := env.Now()
		var last time.Time
		for i := 0; i < 20; i++ {
			env.Fetch(&webreq.Request{ID: int64(i + 1), URL: "https://x.example/"}, func(*webreq.Response) {
				last = env.Now()
			})
		}
		sched.Run()
		return last.Sub(start)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("timing not deterministic: %v vs %v", a, b)
	}
}

func TestPostAndAfter(t *testing.T) {
	n, sched := newNet()
	env := n.Env()
	var order []int
	env.Post(func() { order = append(order, 1) })
	env.After(time.Millisecond, func() { order = append(order, 2) })
	sched.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}
