// Package headerbid is a full reproduction of "No More Chasing Waterfalls:
// A Measurement Study of the Header Bidding Ad-Ecosystem" (IMC 2019): the
// HBDetector transparency tool, the protocol emulations it observes
// (prebid.js-style client wrappers, hosted server-side auctions, hybrid
// deployments, the waterfall baseline), a calibrated synthetic web of
// 35,000 publishers to measure, a crawler, and analyzers that regenerate
// every table and figure of the paper.
//
// Quick start — the streaming Experiment pipeline:
//
//	exp := headerbid.NewExperiment(headerbid.WithSites(1000), headerbid.WithSeed(1))
//	res, err := exp.Run(context.Background())
//	fmt.Printf("HB adoption: %.2f%%\n", 100*res.Summary.AdoptionRate())
//
// Experiments stream each completed visit to pluggable Sinks (JSONL
// writing, progress, custom SinkFunc) the moment the visit finishes, so
// crawls of any size run in flat memory and stop promptly when the
// context is cancelled.
//
// Analysis is the streaming Metrics API: every table and figure of the
// paper is a Metric — an incremental accumulator with Add/Merge — that
// can be attached to a live run with WithMetrics (folded per worker
// shard, off the ordered emit path, merged deterministically at run end)
// or fed from a JSONL stream. NewFigureReport bundles all of them into
// the full figure report:
//
//	fr := headerbid.NewFigureReport()
//	exp := headerbid.NewExperiment(headerbid.WithSites(35000), headerbid.WithMetrics(fr))
//	if _, err := exp.Run(ctx); err == nil {
//		fr.Render(os.Stdout)
//	}
//
// Beyond reproducing the paper's observational findings, the scenario
// layer reruns the same world under controlled interventions: a Sweep
// crawls N variants — wrapper-timeout ladder, partner-pool ablation,
// network profiles, cookie-sync ablation — over one shared, immutably
// generated world and reports the causal deltas:
//
//	cmp, err := headerbid.NewSweep(
//		headerbid.WithSweepSites(5000),
//		headerbid.WithAxes(headerbid.TimeoutAxis(), headerbid.PartnerAxis(), headerbid.NetworkAxis()),
//	).Run(ctx)
//	cmp.Render(os.Stdout)
//
// Single runs apply one intervention with WithOverlay; overlays are
// applied at visit time and never mutate the shared world.
//
// The legacy batch entry points (Crawl, Summarize, WriteDataset, ...)
// remain as thin deprecated wrappers over the Experiment and Metrics.
//
// The package is a thin facade; the implementation lives in internal/
// packages (see DESIGN.md for the system inventory).
package headerbid

import (
	"context"
	"io"

	"headerbid/internal/analysis"
	"headerbid/internal/browser"
	"headerbid/internal/core"
	"headerbid/internal/crawler"
	"headerbid/internal/dataset"
	"headerbid/internal/hb"
	"headerbid/internal/obs"
	"headerbid/internal/partners"
	"headerbid/internal/report"
	"headerbid/internal/sitegen"
	"headerbid/internal/staticdet"
	"headerbid/internal/wayback"
)

// Re-exported core types. The facade deliberately exposes the small
// surface a downstream user needs; power users can vendor the internal
// packages' structure instead.
type (
	// World is the generated publisher ecosystem.
	World = sitegen.World
	// Site is one generated publisher.
	Site = sitegen.Site
	// WorldConfig tunes world generation.
	WorldConfig = sitegen.Config
	// SiteRecord is one crawled site observation.
	SiteRecord = dataset.SiteRecord
	// Summary is the Table 1 roll-up.
	Summary = dataset.Summary
	// Facet is an HB deployment style.
	Facet = hb.Facet
	// Size is an ad-slot dimension.
	Size = hb.Size
	// Observation is a single-page detector result.
	Observation = core.Observation
	// Registry is the demand-partner registry.
	Registry = partners.Registry
	// CrawlConfig tunes a crawl.
	CrawlConfig = crawler.Options
	// Archive is the historical snapshot archive for adoption studies.
	Archive = wayback.Archive
	// Metric is a streaming, mergeable accumulator over site records —
	// the unit of the metrics API. Attach metrics to a run with
	// WithMetrics; every figure-level analysis ships as one (see
	// NewFigureReport for the full bundle).
	Metric = analysis.Metric
	// FigureReport accumulates every dataset-derived table and figure of
	// the paper as one composite Metric; Render writes the full report.
	FigureReport = report.Figures
	// TracePlan selects which visits of a crawl record spans (see
	// WithTrace); selection is rank-ordered and worker-count-invariant.
	TracePlan = obs.TracePlan
	// VisitSpans is one traced visit's virtual-timeline events, delivered
	// on Visit.Trace in deterministic crawl order.
	VisitSpans = obs.VisitSpans
	// Telemetry is the run-level counter registry fed by a crawl (see
	// WithTelemetry); read it live from another goroutine via Totals.
	Telemetry = obs.Registry
	// TelemetryTotals is one consistent read of a Telemetry registry.
	TelemetryTotals = obs.Totals
)

// NewTelemetry returns an empty run-telemetry registry.
func NewTelemetry() *Telemetry { return obs.NewRegistry() }

// Facet values.
const (
	FacetUnknown = hb.FacetUnknown
	FacetClient  = hb.FacetClient
	FacetServer  = hb.FacetServer
	FacetHybrid  = hb.FacetHybrid
)

// DefaultWorldConfig returns the paper-calibrated generation config.
func DefaultWorldConfig(seed int64) WorldConfig { return sitegen.DefaultConfig(seed) }

// GenerateWorld builds a synthetic publisher ecosystem.
func GenerateWorld(cfg WorldConfig) *World { return sitegen.Generate(cfg) }

// Partners returns the registry of the 84 demand partners of the study.
func Partners() *Registry { return partners.Default() }

// DefaultCrawlConfig mirrors the paper's crawl policy.
func DefaultCrawlConfig(seed int64) CrawlConfig { return crawler.DefaultOptions(seed) }

// Crawl measures a world with clean-slate instances on the simulated
// network and returns one record per site visit.
//
// Deprecated: Crawl materializes the whole dataset and cannot be
// cancelled. Use NewExperiment with sinks (or a CollectSink when the
// full slice is genuinely needed) and Run(ctx).
func Crawl(w *World, cfg CrawlConfig) []*SiteRecord {
	c := NewCollectSink()
	// Background context + in-memory sinks: Run cannot fail here.
	_, _ = NewExperiment(WithWorld(w), WithCrawlConfig(cfg), WithSink(c)).Run(context.Background())
	return c.Records()
}

// CrawlWithProgress is Crawl with a progress callback.
//
// Deprecated: use NewExperiment with WithProgress (or NewProgressSink)
// and Run(ctx).
func CrawlWithProgress(w *World, cfg CrawlConfig, progress func(done, total int)) []*SiteRecord {
	c := NewCollectSink()
	_, _ = NewExperiment(WithWorld(w), WithCrawlConfig(cfg),
		WithSink(c), WithProgress(progress)).Run(context.Background())
	return c.Records()
}

// VisitSite measures one site (one clean-slate visit) and returns its
// record — the single-page entry point HBDetector exposes as a browser
// extension in the paper.
func VisitSite(w *World, s *Site, day int, cfg CrawlConfig) *SiteRecord {
	return crawler.VisitSimulated(w, s, day, cfg)
}

// Summarize computes the Table 1 numbers.
//
// Deprecated: use a SummarySink on a running Experiment (or
// Results.Summary, which every Run computes) so the numbers accumulate
// without retaining records.
func Summarize(recs []*SiteRecord) Summary { return dataset.Summarize(recs) }

// WriteDataset writes records as JSONL.
//
// Deprecated: attach a JSONLSink to an Experiment to stream the dataset
// to disk while the crawl runs.
func WriteDataset(w io.Writer, recs []*SiteRecord) error {
	sink := NewJSONLSink(w)
	for _, r := range recs {
		if err := sink.Consume(Visit{Record: r}); err != nil {
			return err
		}
	}
	return sink.Close()
}

// ReadDatasetStream decodes a JSONL dataset record by record, handing
// each to fn without materializing the dataset.
func ReadDatasetStream(r io.Reader, fn func(*SiteRecord) error) error {
	return dataset.ReadStream(r, fn)
}

// ReadDataset loads a JSONL dataset.
//
// Deprecated: use ReadDatasetStream to process records without holding
// the whole dataset (ReadDataset remains for analyses that need it all).
func ReadDataset(r io.Reader) ([]*SiteRecord, error) { return dataset.Read(r) }

// NewFigureReport returns an empty full-figure-report metric over the
// study's demand-partner registry. Attach it to an Experiment with
// WithMetrics (or fold a JSONL stream into it with Add) and Render the
// complete report — no record slice is ever materialized, and the output
// is byte-identical across worker counts.
func NewFigureReport() *FigureReport {
	return report.NewFigures(partners.Default())
}

// Report renders every dataset-derived table and figure to w.
//
// Deprecated: Report consumes a materialized record slice. Use
// NewFigureReport with WithMetrics (live runs) or ReadDatasetStream
// (datasets) to build the same report in streaming memory.
func Report(w io.Writer, recs []*SiteRecord) {
	fr := NewFigureReport()
	for _, r := range recs {
		fr.Add(r)
	}
	fr.Render(w)
}

// NewArchive builds the historical snapshot archive (top-1k per year).
func NewArchive(seed int64, topN int) *Archive { return wayback.NewArchive(seed, topN) }

// AdoptionOverYears runs the Figure 4 study on an archive with the
// paper's static analysis.
func AdoptionOverYears(a *Archive) []analysis.YearAdoption {
	return analysis.AdoptionOverYears(a, staticdet.New())
}

// CompareWithWaterfall runs the paired HB vs waterfall experiment.
func CompareWithWaterfall(w *World, recs []*SiteRecord, seed int64) analysis.ProtocolComparison {
	return analysis.CompareWithWaterfall(w, recs, seed)
}

// Browser/Detector access for custom environments (see examples/livecapture).
type (
	// Page is one loaded webpage with its event bus and request inspector.
	Page = browser.Page
	// Detector is one page's HBDetector instance.
	Detector = core.Detector
)

// AttachDetector wires an HBDetector to a page.
func AttachDetector(p *Page, reg *Registry) *Detector { return core.Attach(p, reg) }
