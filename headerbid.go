// Package headerbid is a full reproduction of "No More Chasing Waterfalls:
// A Measurement Study of the Header Bidding Ad-Ecosystem" (IMC 2019): the
// HBDetector transparency tool, the protocol emulations it observes
// (prebid.js-style client wrappers, hosted server-side auctions, hybrid
// deployments, the waterfall baseline), a calibrated synthetic web of
// 35,000 publishers to measure, a crawler, and analyzers that regenerate
// every table and figure of the paper.
//
// Quick start:
//
//	world := headerbid.GenerateWorld(headerbid.WorldConfig{Seed: 1, NumSites: 1000})
//	recs := headerbid.Crawl(world, headerbid.CrawlConfig{Seed: 1})
//	sum := headerbid.Summarize(recs)
//	fmt.Printf("HB adoption: %.2f%%\n", 100*sum.AdoptionRate())
//
// The package is a thin facade; the implementation lives in internal/
// packages (see DESIGN.md for the system inventory).
package headerbid

import (
	"io"

	"headerbid/internal/analysis"
	"headerbid/internal/browser"
	"headerbid/internal/core"
	"headerbid/internal/crawler"
	"headerbid/internal/dataset"
	"headerbid/internal/hb"
	"headerbid/internal/partners"
	"headerbid/internal/report"
	"headerbid/internal/sitegen"
	"headerbid/internal/staticdet"
	"headerbid/internal/wayback"
)

// Re-exported core types. The facade deliberately exposes the small
// surface a downstream user needs; power users can vendor the internal
// packages' structure instead.
type (
	// World is the generated publisher ecosystem.
	World = sitegen.World
	// Site is one generated publisher.
	Site = sitegen.Site
	// WorldConfig tunes world generation.
	WorldConfig = sitegen.Config
	// SiteRecord is one crawled site observation.
	SiteRecord = dataset.SiteRecord
	// Summary is the Table 1 roll-up.
	Summary = dataset.Summary
	// Facet is an HB deployment style.
	Facet = hb.Facet
	// Size is an ad-slot dimension.
	Size = hb.Size
	// Observation is a single-page detector result.
	Observation = core.Observation
	// Registry is the demand-partner registry.
	Registry = partners.Registry
	// CrawlConfig tunes a crawl.
	CrawlConfig = crawler.Options
	// Archive is the historical snapshot archive for adoption studies.
	Archive = wayback.Archive
)

// Facet values.
const (
	FacetUnknown = hb.FacetUnknown
	FacetClient  = hb.FacetClient
	FacetServer  = hb.FacetServer
	FacetHybrid  = hb.FacetHybrid
)

// DefaultWorldConfig returns the paper-calibrated generation config.
func DefaultWorldConfig(seed int64) WorldConfig { return sitegen.DefaultConfig(seed) }

// GenerateWorld builds a synthetic publisher ecosystem.
func GenerateWorld(cfg WorldConfig) *World { return sitegen.Generate(cfg) }

// Partners returns the registry of the 84 demand partners of the study.
func Partners() *Registry { return partners.Default() }

// DefaultCrawlConfig mirrors the paper's crawl policy.
func DefaultCrawlConfig(seed int64) CrawlConfig { return crawler.DefaultOptions(seed) }

// Crawl measures a world with clean-slate instances on the simulated
// network and returns one record per site visit.
func Crawl(w *World, cfg CrawlConfig) []*SiteRecord {
	return crawler.CrawlWorld(w, cfg, nil)
}

// CrawlWithProgress is Crawl with a progress callback.
func CrawlWithProgress(w *World, cfg CrawlConfig, progress func(done, total int)) []*SiteRecord {
	return crawler.CrawlWorld(w, cfg, crawler.Progress(progress))
}

// VisitSite measures one site (one clean-slate visit) and returns its
// record — the single-page entry point HBDetector exposes as a browser
// extension in the paper.
func VisitSite(w *World, s *Site, day int, cfg CrawlConfig) *SiteRecord {
	return crawler.VisitSimulated(w, s, day, cfg)
}

// Summarize computes the Table 1 numbers.
func Summarize(recs []*SiteRecord) Summary { return dataset.Summarize(recs) }

// WriteDataset writes records as JSONL.
func WriteDataset(w io.Writer, recs []*SiteRecord) error {
	dw := dataset.NewWriter(w)
	for _, r := range recs {
		if err := dw.Write(r); err != nil {
			return err
		}
	}
	return dw.Close()
}

// ReadDataset loads a JSONL dataset.
func ReadDataset(r io.Reader) ([]*SiteRecord, error) { return dataset.Read(r) }

// Report renders every dataset-derived table and figure to w.
func Report(w io.Writer, recs []*SiteRecord) {
	report.New(w).Full(recs, partners.Default())
}

// NewArchive builds the historical snapshot archive (top-1k per year).
func NewArchive(seed int64, topN int) *Archive { return wayback.NewArchive(seed, topN) }

// AdoptionOverYears runs the Figure 4 study on an archive with the
// paper's static analysis.
func AdoptionOverYears(a *Archive) []analysis.YearAdoption {
	return analysis.AdoptionOverYears(a, staticdet.New())
}

// CompareWithWaterfall runs the paired HB vs waterfall experiment.
func CompareWithWaterfall(w *World, recs []*SiteRecord, seed int64) analysis.ProtocolComparison {
	return analysis.CompareWithWaterfall(w, recs, seed)
}

// Browser/Detector access for custom environments (see examples/livecapture).
type (
	// Page is one loaded webpage with its event bus and request inspector.
	Page = browser.Page
	// Detector is one page's HBDetector instance.
	Detector = core.Detector
)

// AttachDetector wires an HBDetector to a page.
func AttachDetector(p *Page, reg *Registry) *Detector { return core.Attach(p, reg) }
