package headerbid_test

import (
	"context"
	"fmt"

	"headerbid"
)

// ExampleNewExperiment shows the streaming pipeline: one configurable
// entry point, pluggable sinks, incremental results.
func ExampleNewExperiment() {
	sum := headerbid.NewSummarySink()
	res, err := headerbid.NewExperiment(
		headerbid.WithSites(500),
		headerbid.WithSeed(1),
		headerbid.WithSink(sum),
	).Run(context.Background())
	if err != nil {
		fmt.Println("crawl failed:", err)
		return
	}
	fmt.Println(res.Summary.SitesCrawled, "sites crawled,",
		sum.Summary() == res.Summary, "sink agrees")
	// Output: 500 sites crawled, true sink agrees
}

// ExampleGenerateWorld shows the minimal generate→crawl→summarize flow
// (the legacy batch facade, kept as a wrapper over the Experiment).
func ExampleGenerateWorld() {
	cfg := headerbid.DefaultWorldConfig(1)
	cfg.NumSites = 500
	world := headerbid.GenerateWorld(cfg)
	recs := headerbid.Crawl(world, headerbid.DefaultCrawlConfig(1))
	sum := headerbid.Summarize(recs)
	fmt.Println(sum.SitesCrawled, "sites crawled,", sum.DemandPartners > 0, "partners seen")
	// Output: 500 sites crawled, true partners seen
}

// ExampleVisitSite shows single-page detection, the browser-extension
// workflow of the paper.
func ExampleVisitSite() {
	cfg := headerbid.DefaultWorldConfig(7)
	cfg.NumSites = 200
	world := headerbid.GenerateWorld(cfg)
	site := world.HBSites()[0]
	rec := headerbid.VisitSite(world, site, 0, headerbid.DefaultCrawlConfig(7))
	fmt.Println("detected:", rec.HB, "facet matches ground truth:", rec.Facet == site.Facet.Short())
	// Output: detected: true facet matches ground truth: true
}

// ExamplePartners shows registry access.
func ExamplePartners() {
	reg := headerbid.Partners()
	p, _ := reg.BySlug("appnexus")
	fmt.Println(reg.Len(), "partners;", p.Name, "bids from", p.Host)
	// Output: 84 partners; AppNexus bids from adnxs.com
}

// ExampleAdoptionOverYears runs the Figure 4 study in four lines.
func ExampleAdoptionOverYears() {
	archive := headerbid.NewArchive(1, 300)
	years := headerbid.AdoptionOverYears(archive)
	fmt.Println(len(years), "years; adoption grew:", years[len(years)-1].Rate > years[0].Rate)
	// Output: 6 years; adoption grew: true
}
