package headerbid_test

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	headerbid "headerbid"
	"headerbid/internal/obs"
)

// traceBytesOf crawls the seed world with tracing on every visit and
// returns the Perfetto trace bytes plus the crawl's JSONL bytes.
func traceBytesOf(t *testing.T, workers int) (trace, jsonl []byte) {
	t.Helper()
	var tbuf, jbuf bytes.Buffer
	exp := headerbid.NewExperiment(
		headerbid.WithSeed(7),
		headerbid.WithSites(150),
		headerbid.WithWorkers(workers),
		headerbid.WithTrace(headerbid.TracePlan{}),
		headerbid.WithSink(headerbid.NewTraceSink(&tbuf), headerbid.NewJSONLSink(&jbuf)),
	)
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return tbuf.Bytes(), jbuf.Bytes()
}

// TestTraceBytesWorkerInvariant is the tracing half of the determinism
// wall: the Perfetto trace of a crawl is byte-identical whether one
// worker or many ran it. Spans are recorded on the virtual timeline and
// emitted in site-rank order, so scheduling must leave no fingerprint.
// The many-worker side uses at least 4 workers (not bare NumCPU) so the
// comparison stays meaningful on single-CPU CI boxes — goroutines still
// interleave and complete out of order there.
func TestTraceBytesWorkerInvariant(t *testing.T) {
	many := runtime.NumCPU()
	if many < 4 {
		many = 4
	}
	trace1, jsonl1 := traceBytesOf(t, 1)
	if len(trace1) == 0 {
		t.Fatal("empty trace from single-worker crawl")
	}
	if err := obs.ValidateTrace(bytes.NewReader(trace1)); err != nil {
		t.Fatalf("single-worker trace invalid: %v", err)
	}
	traceN, jsonlN := traceBytesOf(t, many)
	if !bytes.Equal(trace1, traceN) {
		t.Errorf("trace bytes differ between workers=1 (%d bytes) and workers=%d (%d bytes)",
			len(trace1), many, len(traceN))
	}
	if !bytes.Equal(jsonl1, jsonlN) {
		t.Errorf("JSONL bytes differ between workers=1 and workers=%d", many)
	}
}

// TestTracingLeavesCrawlOutputUntouched: switching tracing on must not
// perturb the crawl's record stream. The JSONL of a traced run is
// byte-identical to an untraced run of the same seed — the recorder
// observes the visit, it never participates in it.
func TestTracingLeavesCrawlOutputUntouched(t *testing.T) {
	run := func(traced bool) []byte {
		var jbuf bytes.Buffer
		opts := []headerbid.ExperimentOption{
			headerbid.WithSeed(7),
			headerbid.WithSites(150),
			headerbid.WithSink(headerbid.NewJSONLSink(&jbuf)),
		}
		if traced {
			opts = append(opts,
				headerbid.WithTrace(headerbid.TracePlan{}),
				headerbid.WithSink(headerbid.NewTraceSink(&bytes.Buffer{})))
		}
		exp := headerbid.NewExperiment(opts...)
		if _, err := exp.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return jbuf.Bytes()
	}
	plain := run(false)
	traced := run(true)
	if !bytes.Equal(plain, traced) {
		t.Errorf("tracing perturbed crawl output: %d vs %d JSONL bytes", len(plain), len(traced))
	}
}

// TestTelemetryAccountsForEveryVisit: the run-level registry's totals
// must agree with the crawl it watched — one Visits increment per
// emitted visit, traced visits counted exactly when a trace plan
// selected them.
func TestTelemetryAccountsForEveryVisit(t *testing.T) {
	reg := headerbid.NewTelemetry()
	var seen int
	count := headerbid.SinkFunc(func(headerbid.Visit) error { seen++; return nil })
	exp := headerbid.NewExperiment(
		headerbid.WithSeed(7),
		headerbid.WithSites(150),
		headerbid.WithTelemetry(reg),
		headerbid.WithTrace(headerbid.TracePlan{MaxSites: 9}),
		headerbid.WithSink(headerbid.NewTraceSink(&bytes.Buffer{}), count),
	)
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	tot := reg.Totals()
	if got, want := tot.Visits, uint64(seen); got != want {
		t.Errorf("telemetry counted %d visits, sink saw %d", got, want)
	}
	if tot.TracedVisits != 9 {
		t.Errorf("TracedVisits = %d, want 9 (MaxSites)", tot.TracedVisits)
	}
	if tot.WireRequests == 0 || tot.WireBytesIn == 0 {
		t.Errorf("wire counters empty: requests=%d bytes_in=%d", tot.WireRequests, tot.WireBytesIn)
	}
}
