package headerbid

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// BenchmarkSweep_WorldReuse measures what sharing one world across
// sweep variants buys: the marginal cost of one variant (a crawl over
// the already-generated, cache-warm world — page HTML rendered, partner
// exchanges built, host dispatch precomputed) against a fresh-run cost
// (world generation plus a cold first crawl). The bench gate asserts
// variant_pct — 100 × variant-minimum / fresh-minimum — stays below its
// ceiling, i.e. that sweeps never silently regress into regenerating or
// re-warming per-variant state. Like the metrics-overhead gate, both
// sides interleave in one run and are summarized by per-side minima:
// the workload is deterministic, so noise only ever adds time, and
// contention almost always inflates the ratio's numerator and
// denominator alike rather than hiding a real regression.
func BenchmarkSweep_WorldReuse(b *testing.B) {
	const sites = 1200
	cfg := DefaultWorldConfig(7)
	cfg.NumSites = sites
	opts := DefaultCrawlConfig(7)

	crawl := func(w *World) {
		res, err := NewExperiment(WithWorld(w), WithCrawlConfig(opts)).Run(context.Background())
		if err != nil || res.Stats.Visits != sites {
			b.Fatalf("run failed: %v (%d visits)", err, res.Stats.Visits)
		}
	}

	// The shared world every "variant" crawl reuses, warmed off the
	// clock exactly as a sweep's baseline warms it for later variants.
	shared := GenerateWorld(cfg)
	crawl(shared)

	variantOnce := func() time.Duration {
		start := time.Now()
		crawl(shared)
		return time.Since(start)
	}
	freshOnce := func() time.Duration {
		start := time.Now()
		crawl(GenerateWorld(cfg))
		return time.Since(start)
	}

	var variantMin, freshMin time.Duration
	keepMin := func(d *time.Duration, v time.Duration) {
		if *d == 0 || v < *d {
			*d = v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			keepMin(&freshMin, freshOnce())
			keepMin(&variantMin, variantOnce())
		} else {
			keepMin(&variantMin, variantOnce())
			keepMin(&freshMin, freshOnce())
		}
	}
	b.StopTimer()

	if freshMin > 0 {
		b.ReportMetric(100*variantMin.Seconds()/freshMin.Seconds(), "variant_pct")
		b.ReportMetric(float64(freshMin.Milliseconds()), "fresh_ms")
		b.ReportMetric(float64(variantMin.Milliseconds()), "variant_ms")
	}
}

// BenchmarkSweep_TimeoutAxis is the end-to-end sweep benchmark: a
// three-variant timeout sweep plus baseline over one shared 400-site
// world, comparison included — the cost profile of the scenario engine
// itself rather than of one crawl.
func BenchmarkSweep_TimeoutAxis(b *testing.B) {
	const sites = 400
	cfg := DefaultWorldConfig(7)
	cfg.NumSites = sites
	world := GenerateWorld(cfg)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := NewSweep(
			WithSweepWorld(world),
			WithSweepSeed(7),
			WithAxes(TimeoutAxis(500, 3000, 10000)),
		).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if got := len(cmp.Variants()); got != 4 {
			b.Fatalf("got %d variants, want 4", got)
		}
		var buf bytes.Buffer
		cmp.Render(&buf)
		if buf.Len() == 0 {
			b.Fatal("empty comparison render")
		}
	}
	b.StopTimer()

	visits := float64(b.N) * sites * 4
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(visits/secs, "visits/sec")
	}
}
