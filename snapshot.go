package headerbid

import (
	"io"

	"headerbid/internal/sitegen"
	"headerbid/internal/snapshot"
)

// Shard identifies one slice of an n-way world partition — the unit of
// the distributed crawl. Pass it to an Experiment with WithShard, or
// parse the CLI "i/n" syntax with ParseShard.
type Shard = sitegen.Shard

// ParseShard parses the "i/n" CLI syntax (e.g. "2/4").
func ParseShard(s string) (Shard, error) { return sitegen.ParseShard(s) }

// ShardOf returns which shard of an n-way split of the seed's world a
// site rank belongs to — a pure function of (seed, rank, n).
func ShardOf(seed int64, rank, n int) int { return sitegen.ShardOf(seed, rank, n) }

// MetricCodec is a Metric whose accumulator state round-trips through
// the shard-file format: everything the facade constructors in
// metrics.go return, plus the FigureReport.
type MetricCodec = snapshot.Codec

// ShardHeader identifies which slice of which world a shard file
// covers.
type ShardHeader = snapshot.Header

// ShardFold merges shard files — in any order or grouping — into the
// accumulator state a single-process crawl would have produced.
type ShardFold = snapshot.Fold

// SnapshotFormatVersion is the shard-file format version this build
// reads and writes.
const SnapshotFormatVersion = snapshot.FormatVersion

// MarshalShard writes the shard file for one crawled slice.
func MarshalShard(w io.Writer, h ShardHeader, metrics []MetricCodec) error {
	return snapshot.MarshalShard(w, h, metrics)
}

// UnmarshalShard reads one shard file, refusing unknown format versions
// and metric names.
func UnmarshalShard(r io.Reader) (ShardHeader, []MetricCodec, error) {
	return snapshot.UnmarshalShard(r)
}

// WriteShardFile marshals to path ("-" means stdout).
func WriteShardFile(path string, h ShardHeader, metrics []MetricCodec) error {
	return snapshot.WriteShardFile(path, h, metrics)
}

// ReadShardFile unmarshals one shard file from disk.
func ReadShardFile(path string) (ShardHeader, []MetricCodec, error) {
	return snapshot.ReadShardFile(path)
}
