#!/usr/bin/env sh
# benchdiff.sh <baseline> <current> — minimal benchstat stand-in.
#
# Compares the BenchmarkCrawl_EndToEnd metric pairs (ns/op, sites/sec,
# ns/visit, allocs/visit, B/op, allocs/op) between two `go test -bench`
# outputs and prints per-metric deltas. `make benchstat` uses the real
# benchstat tool when it is installed and falls back to this script when
# it is not, so the baseline diff works on a bare toolchain.
set -e

base=$1
new=$2
if [ -z "$base" ] || [ -z "$new" ]; then
    echo "usage: benchdiff.sh <baseline-file> <current-file>" >&2
    exit 2
fi

metrics() {
    awk '/^BenchmarkCrawl_EndToEnd/ {
        for (i = 3; i < NF; i += 2) print $(i+1), $i
    }' "$1" | sort
}

tmpbase=$(mktemp)
tmpnew=$(mktemp)
trap 'rm -f "$tmpbase" "$tmpnew"' EXIT
metrics "$base" >"$tmpbase"
metrics "$new" >"$tmpnew"

printf '%-14s %14s %14s %9s\n' metric baseline current delta
join "$tmpbase" "$tmpnew" | awk '{
    d = ($2 == 0) ? 0 : ($3 - $2) / $2 * 100
    printf "%-14s %14s %14s %+8.1f%%\n", $1, $2, $3, d
}'
