#!/usr/bin/env sh
# trace_smoke.sh — CI smoke for the observability layer: a traced crawl
# must be deterministic end to end through the real binary. The same
# seed crawled with one worker and with the default worker count must
# produce byte-identical crawl JSONL *and* byte-identical Perfetto
# trace files, and the trace must satisfy the span-nesting validator
# (every span stack-nests within its track — Perfetto renders it as a
# well-formed flame chart, not overlapping slices).
#
# This is the CLI counterpart of the in-process tests in trace_test.go:
# it exercises the real hbcrawl flags (-trace, -trace-sites, -workers)
# and the real files on disk.
set -e

SITES=${SITES:-200}
SEED=${SEED:-7}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== building hbcrawl"
go build -o "$WORK" ./cmd/hbcrawl

echo "== traced crawl of $SITES sites (seed $SEED), workers=1"
"$WORK/hbcrawl" -sites "$SITES" -seed "$SEED" -workers 1 -q \
    -o "$WORK/one.jsonl" -trace "$WORK/one.json" 2>/dev/null

# 4 explicit workers, not the NumCPU default: on a single-CPU CI box
# the default collapses to 1 and the comparison proves nothing, while
# 4 goroutine workers interleave and finish out of order regardless.
echo "== traced crawl of $SITES sites (seed $SEED), workers=4"
"$WORK/hbcrawl" -sites "$SITES" -seed "$SEED" -workers 4 -q \
    -o "$WORK/many.jsonl" -trace "$WORK/many.json" 2>/dev/null

if ! cmp -s "$WORK/one.jsonl" "$WORK/many.jsonl"; then
    echo "FAIL: crawl JSONL differs between workers=1 and workers=4" >&2
    exit 1
fi
echo "OK: crawl JSONL is worker-count invariant"

if ! cmp -s "$WORK/one.json" "$WORK/many.json"; then
    echo "FAIL: trace files differ between workers=1 and workers=4" >&2
    exit 1
fi
echo "OK: trace bytes are worker-count invariant"

echo "== untraced crawl must emit the same JSONL"
"$WORK/hbcrawl" -sites "$SITES" -seed "$SEED" -q -o "$WORK/plain.jsonl" 2>/dev/null
if ! cmp -s "$WORK/plain.jsonl" "$WORK/one.jsonl"; then
    echo "FAIL: tracing perturbed the crawl's JSONL output" >&2
    exit 1
fi
echo "OK: tracing leaves crawl output untouched"

echo "== validating trace structure (span nesting, JSON shape)"
HB_TRACE_FILE="$WORK/one.json" go test ./internal/obs -run TestTraceArtifact
echo "OK: trace smoke passed"
