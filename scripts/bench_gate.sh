#!/usr/bin/env sh
# bench_gate.sh — CI crawl-benchmark smoke + allocation ceiling + metrics
# overhead gate.
#
# Runs the crawl-throughput gate (fails loudly if the crawl path breaks)
# and enforces two committed ceilings before anyone reads profile
# numbers:
#
#   - allocs/visit <= MAX_ALLOCS on the bare crawl (PERF.md records the
#     measured numbers the ceiling is derived from);
#   - the metrics-attached crawl (full figure report accumulating on the
#     worker shards) costs at most MAX_METRICS_OVERHEAD_PCT of bare-crawl
#     time, measured by BenchmarkCrawl_MetricsOverhead. That benchmark
#     interleaves bare and metrics-attached crawls and compares per-side
#     *minimum* times — contention only ever inflates a deterministic
#     crawl, so per-attempt noise almost always inflates the measured
#     ratio (deflation would need the bare side contaminated in every one
#     of the interleaved samples while the metrics side gets a clean
#     window). Inflation failures are therefore retried up to
#     GATE_ATTEMPTS times; a real regression stays above the ceiling on
#     every attempt.
set -e

MAX_ALLOCS=${MAX_ALLOCS:-200}
MAX_METRICS_OVERHEAD_PCT=${MAX_METRICS_OVERHEAD_PCT:-10}
MAX_OBS_OVERHEAD_PCT=${MAX_OBS_OVERHEAD_PCT:-5}
MAX_SWEEP_VARIANT_PCT=${MAX_SWEEP_VARIANT_PCT:-95}
GATE_ATTEMPTS=${GATE_ATTEMPTS:-3}
BASELINE=${BASELINE:-perf/bench.baseline.txt}

# The ceilings above are derived from the committed reference numbers,
# and any failure here is triaged against them (make benchstat). Refuse
# to gate against ceilings nobody can trace: fail up front, with
# instructions, when the baseline is missing.
if [ ! -f "$BASELINE" ]; then
    echo "bench gate: committed bench baseline $BASELINE is missing." >&2
    echo "bench gate: run 'make baseline' on the reference machine and commit the file before gating." >&2
    exit 1
fi

# metric_of <output> <benchmark> <metric>: pull one custom metric value
# off the benchmark's output line (name may carry a -GOMAXPROCS suffix).
metric_of() {
    echo "$1" | awk -v bench="$2" -v metric="$3" '
        $1 ~ "^"bench"(-[0-9]+)?$" {
            for (i = 1; i <= NF; i++) if ($i == metric) print $(i-1)
        }'
}

out=$(go test -run '^$' -bench '^BenchmarkCrawl_EndToEnd$' -benchtime 3x .)
echo "$out"

allocs=$(metric_of "$out" BenchmarkCrawl_EndToEnd allocs/visit)
if [ -z "$allocs" ]; then
    echo "bench gate: allocs/visit metric not found in benchmark output" >&2
    exit 1
fi
if ! awk -v a="$allocs" -v max="$MAX_ALLOCS" 'BEGIN { exit !(a <= max) }'; then
    echo "bench gate: allocs/visit $allocs exceeds ceiling $MAX_ALLOCS" >&2
    exit 1
fi
echo "bench gate: allocs/visit $allocs <= $MAX_ALLOCS"

# gate_ratio <benchmark> <metric> <ceiling> <label>: run a ratio-shaped
# benchmark up to GATE_ATTEMPTS times and require metric <= ceiling on
# some attempt (per-side-minimum benchmarks make noise inflationary, so
# retrying never lets a real regression through).
gate_ratio() {
    bench=$1; metric=$2; ceiling=$3; label=$4
    attempt=1
    while [ "$attempt" -le "$GATE_ATTEMPTS" ]; do
        out=$(go test -run '^$' -bench "^$bench\$" -benchtime 10x .)
        echo "$out" | grep -E '^Benchmark' || true
        val=$(metric_of "$out" "$bench" "$metric")
        if [ -z "$val" ]; then
            echo "bench gate: $metric metric not found in $bench output" >&2
            exit 1
        fi
        if awk -v v="$val" -v max="$ceiling" 'BEGIN { exit !(v <= max) }'; then
            echo "bench gate: $label ${val}% <= ${ceiling}% (attempt $attempt)"
            return 0
        fi
        echo "bench gate: attempt $attempt: $label ${val}% > ${ceiling}%" >&2
        attempt=$((attempt + 1))
    done
    echo "bench gate: $label exceeded ${ceiling}% on all $GATE_ATTEMPTS attempts" >&2
    exit 1
}

gate_ratio BenchmarkCrawl_MetricsOverhead overhead_pct "$MAX_METRICS_OVERHEAD_PCT" \
    "full-report metrics overhead"

# Observability gate: run telemetry plus a sampled trace plan must cost
# the crawl at most MAX_OBS_OVERHEAD_PCT of bare time. The untraced
# majority of visits rides the guarded-emission pattern (hbvet:
# obsguard), so a regression here means an unguarded recording call or
# a hot harvest path grew.
gate_ratio BenchmarkCrawl_ObsOverhead overhead_pct "$MAX_OBS_OVERHEAD_PCT" \
    "observability overhead"

# Shared-world sweep gate: a variant's marginal cost (crawl over the
# warm shared world) must stay below the fresh-run cost (world
# generation + cold crawl). A sweep that regresses into regenerating or
# re-warming per-variant state lands at ~100% or above.
gate_ratio BenchmarkSweep_WorldReuse variant_pct "$MAX_SWEEP_VARIANT_PCT" \
    "sweep variant marginal cost"
