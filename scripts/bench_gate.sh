#!/usr/bin/env sh
# bench_gate.sh — CI crawl-benchmark smoke + allocation ceiling.
#
# Runs the crawl-throughput gate once (fails loudly if the crawl path
# breaks) and enforces the committed allocs/visit ceiling: a change that
# regresses per-visit allocation past MAX_ALLOCS fails CI even before
# anyone reads profile numbers. PERF.md records the measured numbers the
# ceiling is derived from.
set -e

MAX_ALLOCS=${MAX_ALLOCS:-200}

out=$(go test -run '^$' -bench Crawl_EndToEnd -benchtime 1x .)
echo "$out"

allocs=$(echo "$out" | awk '/BenchmarkCrawl_EndToEnd/ {
    for (i = 1; i <= NF; i++) if ($i == "allocs/visit") print $(i-1)
}')
if [ -z "$allocs" ]; then
    echo "bench gate: allocs/visit metric not found in benchmark output" >&2
    exit 1
fi
if ! awk -v a="$allocs" -v max="$MAX_ALLOCS" 'BEGIN { exit !(a <= max) }'; then
    echo "bench gate: allocs/visit $allocs exceeds ceiling $MAX_ALLOCS" >&2
    exit 1
fi
echo "bench gate: allocs/visit $allocs <= $MAX_ALLOCS"
