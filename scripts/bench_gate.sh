#!/usr/bin/env sh
# bench_gate.sh — CI crawl-benchmark smoke + allocation ceiling + metrics
# overhead gate.
#
# Runs the crawl-throughput gate (fails loudly if the crawl path breaks)
# and enforces two committed ceilings before anyone reads profile
# numbers:
#
#   - allocs/visit <= MAX_ALLOCS on the bare crawl (PERF.md records the
#     measured numbers the ceiling is derived from);
#   - the metrics-attached crawl (full figure report accumulating on the
#     worker shards) costs at most MAX_METRICS_OVERHEAD_PCT of bare-crawl
#     time, measured by BenchmarkCrawl_MetricsOverhead. That benchmark
#     interleaves bare and metrics-attached crawls and compares per-side
#     *minimum* times — contention only ever inflates a deterministic
#     crawl, so per-attempt noise almost always inflates the measured
#     ratio (deflation would need the bare side contaminated in every one
#     of the interleaved samples while the metrics side gets a clean
#     window). Inflation failures are therefore retried up to
#     GATE_ATTEMPTS times; a real regression stays above the ceiling on
#     every attempt.
set -e

MAX_ALLOCS=${MAX_ALLOCS:-200}
MAX_METRICS_OVERHEAD_PCT=${MAX_METRICS_OVERHEAD_PCT:-10}
GATE_ATTEMPTS=${GATE_ATTEMPTS:-3}

# metric_of <output> <benchmark> <metric>: pull one custom metric value
# off the benchmark's output line (name may carry a -GOMAXPROCS suffix).
metric_of() {
    echo "$1" | awk -v bench="$2" -v metric="$3" '
        $1 ~ "^"bench"(-[0-9]+)?$" {
            for (i = 1; i <= NF; i++) if ($i == metric) print $(i-1)
        }'
}

out=$(go test -run '^$' -bench '^BenchmarkCrawl_EndToEnd$' -benchtime 3x .)
echo "$out"

allocs=$(metric_of "$out" BenchmarkCrawl_EndToEnd allocs/visit)
if [ -z "$allocs" ]; then
    echo "bench gate: allocs/visit metric not found in benchmark output" >&2
    exit 1
fi
if ! awk -v a="$allocs" -v max="$MAX_ALLOCS" 'BEGIN { exit !(a <= max) }'; then
    echo "bench gate: allocs/visit $allocs exceeds ceiling $MAX_ALLOCS" >&2
    exit 1
fi
echo "bench gate: allocs/visit $allocs <= $MAX_ALLOCS"

attempt=1
while [ "$attempt" -le "$GATE_ATTEMPTS" ]; do
    out=$(go test -run '^$' -bench '^BenchmarkCrawl_MetricsOverhead$' -benchtime 10x .)
    echo "$out" | grep -E '^Benchmark' || true
    overhead=$(metric_of "$out" BenchmarkCrawl_MetricsOverhead overhead_pct)
    if [ -z "$overhead" ]; then
        echo "bench gate: overhead_pct metric not found in benchmark output" >&2
        exit 1
    fi
    if awk -v o="$overhead" -v max="$MAX_METRICS_OVERHEAD_PCT" 'BEGIN { exit !(o <= max) }'; then
        echo "bench gate: full-report metrics overhead ${overhead}% <= ${MAX_METRICS_OVERHEAD_PCT}% (attempt $attempt)"
        exit 0
    fi
    echo "bench gate: attempt $attempt: overhead ${overhead}% > ${MAX_METRICS_OVERHEAD_PCT}%" >&2
    attempt=$((attempt + 1))
done
echo "bench gate: full-report metrics overhead exceeded ${MAX_METRICS_OVERHEAD_PCT}% on all $GATE_ATTEMPTS attempts" >&2
exit 1
