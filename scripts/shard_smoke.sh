#!/usr/bin/env sh
# shard_smoke.sh — CI smoke for the distributed crawl: a 3-shard crawl
# folded with hbmerge must render the byte-identical figure report of a
# single-process crawl over the same seed, and the shard-world
# generation benchmark must show the ~1/n cost scaling the lazy
# partition promises.
#
# This is the end-to-end CLI counterpart of the in-process tests in
# shard_determinism_test.go: it exercises the real binaries, the real
# shard files on disk, and an out-of-order merge.
set -e

SITES=${SITES:-3000}
SEED=${SEED:-7}
DAYS=${DAYS:-2}
SHARDS=${SHARDS:-3}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== building hbcrawl + hbmerge"
go build -o "$WORK" ./cmd/hbcrawl ./cmd/hbmerge

echo "== crawling $SHARDS shards of $SITES sites (seed $SEED, $DAYS days)"
i=0
files=""
while [ "$i" -lt "$SHARDS" ]; do
    "$WORK/hbcrawl" -sites "$SITES" -seed "$SEED" -days "$DAYS" -q \
        -shard "$i/$SHARDS" -o /dev/null -shard-out "$WORK/shard$i.hbs" 2>/dev/null
    files="$WORK/shard$i.hbs $files"   # reversed order on purpose
    i=$((i + 1))
done

echo "== single-process reference crawl"
"$WORK/hbcrawl" -sites "$SITES" -seed "$SEED" -days "$DAYS" -q \
    -o /dev/null -report 2>/dev/null > "$WORK/single.txt"

echo "== folding shards (reverse order)"
# shellcheck disable=SC2086 # word splitting of $files is intended
"$WORK/hbmerge" $files 2>/dev/null > "$WORK/merged.txt"

if ! diff -q "$WORK/single.txt" "$WORK/merged.txt" >/dev/null; then
    echo "FAIL: folded report differs from single-process report" >&2
    diff "$WORK/single.txt" "$WORK/merged.txt" | head -20 >&2
    exit 1
fi
echo "OK: hbmerge report is byte-identical to the single-process report"

echo "== shard generation cost scaling (BenchmarkGenerateShard)"
go test ./internal/sitegen/ -run '^$' -bench BenchmarkGenerateShard -benchtime 2x
echo "OK: shard smoke passed"
