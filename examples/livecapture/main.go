// Live capture: run the ecosystem over a real HTTP stack on loopback and
// point the same browser+HBDetector at it — the integration proof that
// nothing in the measurement pipeline depends on the virtual clock. The
// detector inspects real requests flowing over real sockets. This is the
// custom-environment escape hatch of the API: where the streaming
// Experiment drives the simulated network for you, here the page and
// detector are wired by hand via headerbid.AttachDetector.
package main

import (
	"fmt"
	"log"
	"time"

	"headerbid"
	"headerbid/internal/browser"
	"headerbid/internal/livenet"
	"headerbid/internal/pagert"
)

func main() {
	log.SetFlags(0)

	cfg := headerbid.DefaultWorldConfig(31)
	cfg.NumSites = 120
	world := headerbid.GenerateWorld(cfg)

	// Serve the whole ecosystem on 127.0.0.1; compress service times 10x
	// so the demo finishes quickly (latency semantics scale with it).
	srv, err := livenet.Serve(world, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("ecosystem live on %s\n", srv.Addr())

	var site *headerbid.Site
	for _, s := range world.HBSites() {
		if s.Facet == headerbid.FacetClient {
			site = s
			break
		}
	}
	if site == nil {
		site = world.HBSites()[0]
	}
	fmt.Printf("visiting %s over real HTTP (ground truth: %s)\n\n", site.PageURL(), site.Facet)

	env := livenet.NewEnv(srv)
	defer env.Close()

	opts := browser.DefaultOptions()
	opts.PageTimeout = 30 * time.Second
	b := browser.New(env, pagert.New(world.Registry), opts)

	// Visit and attach on the env loop: response delivery runs there, so
	// wiring the detector from the main goroutine would race with it.
	done := make(chan *headerbid.Page, 1)
	pageCh := make(chan *headerbid.Page, 1)
	detCh := make(chan *headerbid.Detector, 1)
	env.Post(func() {
		page := b.Visit(site.PageURL(), func(p *browser.Page, vr *browser.VisitResult) {
			if !vr.Loaded {
				log.Fatalf("page failed to load: %s", vr.Err)
			}
			done <- p
		})
		pageCh <- page
		detCh <- headerbid.AttachDetector(page, world.Registry)
	})
	page, det := <-pageCh, <-detCh

	<-done
	// Let the page settle: wait until no requests are pending.
	livenet.WaitSettled(func() int {
		n := 0
		env.Post(func() { n = page.Inspector.Pending() })
		//hbvet:allow detwall live-capture example polls a real HTTP stack; real sockets need real time
		time.Sleep(2 * time.Millisecond)
		return n
	}, 300*time.Millisecond, 20*time.Second)

	obsCh := make(chan *headerbid.Observation, 1)
	env.Post(func() { obsCh <- det.Observation() })
	obs := <-obsCh

	fmt.Printf("detected HB:      %v\n", obs.HB)
	fmt.Printf("detected facet:   %s\n", obs.Facet)
	fmt.Printf("partners seen:    %v\n", obs.PartnersSeen)
	fmt.Printf("requests seen:    %d\n", obs.RequestCount)
	fmt.Printf("events seen:      %d\n", obs.EventCount)
	fmt.Printf("total HB latency: %s (scaled 10x down)\n", obs.TotalHBLatency.Round(time.Millisecond))
	for _, a := range obs.Auctions {
		fmt.Printf("auction %s: %d bids", a.ID, len(a.Bids))
		if a.Winner != nil {
			fmt.Printf(", winner %s @ %.4f CPM", a.Winner.Bidder, a.Winner.CPM)
		}
		fmt.Println()
	}
}
