// Adoption study: the Figure 4 workflow — build the historical archive
// (yearly top-1k snapshots, 2014-2019), scan each snapshot with the
// static detector (archived pages cannot be rendered), and chart adoption
// over time. Also demonstrates why the paper rejects naive raw-source
// grepping for the live crawl: the raw detector trips over dead markup —
// and closes by contrasting static detection with a rendered streaming
// crawl of a present-day world.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"headerbid"
	"headerbid/internal/analysis"
	"headerbid/internal/staticdet"
)

func main() {
	log.SetFlags(0)

	archive := headerbid.NewArchive(21, 1000)

	fmt.Println("Figure 4: HB adoption per year (strict static analysis)")
	years := headerbid.AdoptionOverYears(archive)
	for _, y := range years {
		bar := strings.Repeat("#", int(y.Rate*120))
		fmt.Printf("%d %5.1f%% (truth %5.1f%%) %s\n", y.Year, 100*y.Rate, 100*y.TrueRate, bar)
	}

	// Ablation: strict script-element matching vs naive raw grep. The raw
	// detector also fires on commented-out library markup, inflating
	// adoption — the false-positive class the paper calls out in §3.1.
	fmt.Println("\nstrict vs raw static analysis (2019 snapshots):")
	strict, raw := staticdet.New(), staticdet.NewRaw()
	var strictHits, rawHits int
	snaps := archive.Snapshots(2019)
	for _, s := range snaps {
		if strict.Scan(s.HTML).HB {
			strictHits++
		}
		if raw.Scan(s.HTML).HB {
			rawHits++
		}
	}
	fmt.Printf("strict: %d/%d (%.1f%%)   raw grep: %d/%d (%.1f%%)\n",
		strictHits, len(snaps), 100*float64(strictHits)/float64(len(snaps)),
		rawHits, len(snaps), 100*float64(rawHits)/float64(len(snaps)))

	// Static detector accuracy against archive ground truth.
	var tp, fp, fn int
	for _, year := range []int{2014, 2015, 2016, 2017, 2018, 2019} {
		for _, s := range archive.Snapshots(year) {
			got := strict.Scan(s.HTML).HB
			switch {
			case got && s.TrueHB:
				tp++
			case got && !s.TrueHB:
				fp++
			case !got && s.TrueHB:
				fn++
			}
		}
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	fmt.Printf("\nstrict static detector across all years: precision=%.3f recall=%.3f\n", precision, recall)

	// Contrast: present-day adoption measured the dynamic way — a
	// rendered streaming crawl with the full HBDetector, the methodology
	// the paper uses when pages CAN be rendered. The summary accumulates
	// while visits stream; no record slice is ever built.
	res, err := headerbid.NewExperiment(
		headerbid.WithSites(800),
		headerbid.WithSeed(21),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrendered crawl (800 present-day sites, dynamic detection): %.1f%% adoption\n",
		100*res.Summary.AdoptionRate())
	_ = analysis.YearAdoption{}
}
