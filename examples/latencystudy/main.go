// Latency study: crawl a mid-sized synthetic web with the streaming
// Experiment pipeline and reproduce the paper's core latency findings —
// the total-HB-latency CDF (Figure 12, accumulated incrementally while
// the crawl runs), latency vs number of demand partners (Figure 15,
// accumulated as a sharded streaming Metric on the worker goroutines),
// and the headline HB-vs-waterfall comparison ("HB latency can be up
// to 3x waterfall in the median case").
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"headerbid"
	"headerbid/internal/report"
)

func main() {
	log.SetFlags(0)

	const seed = 11

	// Figure 12 accumulates while visits stream (every Run computes it as
	// Results.Latency). Figure 15 rides the metrics API: each crawl
	// worker folds its visits into a private shard, merged when the run
	// ends — no record slice, no emit-path serialization. Only the
	// waterfall comparison still needs the full records, so a CollectSink
	// bridges that one analysis.
	latVsPartners := headerbid.NewLatencyVsPartnerCount(10)
	collect := headerbid.NewCollectSink()
	exp := headerbid.NewExperiment(
		headerbid.WithSites(3000),
		headerbid.WithSeed(seed),
		headerbid.WithMetrics(latVsPartners),
		headerbid.WithSink(collect),
	)
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d sites in %s (virtual clock)\n",
		res.Stats.Visits, res.Elapsed.Round(time.Millisecond))

	rw := report.New(os.Stdout)

	// Figure 12: the latency CDF with the paper's two markers — computed
	// incrementally during the crawl, no batch pass over the dataset.
	lat := res.Latency
	rw.Figure12(lat)

	// Figure 15: more partners, more latency — straight from the merged
	// metric shards.
	rw.Figure15(latVsPartners.Result())

	// Headline: HB vs the waterfall standard over the same partners.
	cmp := headerbid.CompareWithWaterfall(exp.World(), collect.Records(), seed)
	rw.Comparison(cmp)

	fmt.Printf("\npaper: median ≈600ms, ≥3s in ~10%% of sites, HB/waterfall median ratio up to 3x\n")
	fmt.Printf("here:  median %.0fms, ≥3s in %.1f%%, ratio %.2fx\n",
		lat.MedianMS, 100*lat.FracOver3s, cmp.MedianRatio)
}
