// Latency study: crawl a mid-sized synthetic web and reproduce the
// paper's core latency findings — the total-HB-latency CDF (Figure 12),
// latency vs number of demand partners (Figure 15), and the headline
// HB-vs-waterfall comparison ("HB latency can be up to 3x waterfall in
// the median case").
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"headerbid"
	"headerbid/internal/analysis"
	"headerbid/internal/report"
)

func main() {
	log.SetFlags(0)

	const seed = 11
	cfg := headerbid.DefaultWorldConfig(seed)
	cfg.NumSites = 3000
	world := headerbid.GenerateWorld(cfg)

	start := time.Now()
	recs := headerbid.Crawl(world, headerbid.DefaultCrawlConfig(seed))
	fmt.Printf("crawled %d sites in %s (virtual clock)\n", len(recs), time.Since(start).Round(time.Millisecond))

	rw := report.New(os.Stdout)

	// Figure 12: the latency CDF with the paper's two markers.
	lat := analysis.LatencyCDF(recs)
	rw.Figure12(lat)

	// Figure 15: more partners, more latency.
	rw.Figure15(analysis.LatencyVsPartnerCount(recs, 10))

	// Headline: HB vs the waterfall standard over the same partners.
	cmp := headerbid.CompareWithWaterfall(world, recs, seed)
	rw.Comparison(cmp)

	fmt.Printf("\npaper: median ≈600ms, ≥3s in ~10%% of sites, HB/waterfall median ratio up to 3x\n")
	fmt.Printf("here:  median %.0fms, ≥3s in %.1f%%, ratio %.2fx\n",
		lat.MedianMS, 100*lat.FracOver3s, cmp.MedianRatio)
}
