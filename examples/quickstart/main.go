// Quickstart: the streaming Experiment pipeline end to end — generate a
// small synthetic web, crawl it with HBDetector attached, watch HB sites
// stream out of the pipeline as their visits complete, aggregate a
// figure-level metric while the crawl runs, then drill into one site
// with the single-page entry point (the workflow the paper ships as a
// browser extension).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"headerbid"
)

func main() {
	log.SetFlags(0)

	// One entry point, composable options, pluggable outputs: print each
	// HB site the moment its visit completes (a custom SinkFunc), while
	// the run accumulates Table-1 numbers incrementally and a streaming
	// Metric (Figure 8, folded per worker off the emit path) tallies
	// partner coverage.
	topPartners := headerbid.NewTopPartners(5)
	var firstHybrid *headerbid.SiteRecord
	exp := headerbid.NewExperiment(
		headerbid.WithSites(200),
		headerbid.WithSeed(7),
		headerbid.WithMetrics(topPartners),
		headerbid.WithSink(headerbid.SinkFunc(func(v headerbid.Visit) error {
			r := v.Record
			if r.HB {
				fmt.Printf("  [%3d/%3d] %-20s facet=%-7s partners=%d latency=%4.0fms\n",
					v.Done, v.Total, r.Domain, r.Facet, len(r.Partners), r.TotalHBLatencyMS)
				if firstHybrid == nil && r.Facet == "hybrid" {
					firstHybrid = r
				}
			}
			return nil
		})),
	)

	fmt.Println("streaming crawl of a 200-site world (HB sites as they complete):")
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncrawled %d sites in %s: %d HB (%.1f%%), %d auctions, %d bids, %d partners\n",
		res.Summary.SitesCrawled, res.Elapsed.Round(time.Millisecond), res.Summary.SitesWithHB,
		100*res.Summary.AdoptionRate(), res.Summary.Auctions, res.Summary.Bids,
		res.Summary.DemandPartners)
	fmt.Printf("median HB latency: %.0f ms\n", res.Latency.MedianMS)

	fmt.Printf("top demand partners (Figure 8, streamed):")
	for _, p := range topPartners.Result() {
		fmt.Printf("  %s %.0f%%", p.Slug, 100*p.Share)
	}
	fmt.Printf("\n\n")

	if firstHybrid == nil {
		log.Fatal("no hybrid site generated (unexpected for this seed)")
	}

	// Drill into the richest facet with the single-page entry point: a
	// clean-slate visit, exactly what the crawl did for this site.
	site, _ := exp.World().SiteByDomain(firstHybrid.Domain)
	fmt.Printf("revisiting %s (ground truth: %s, %d ad units, partners %v)\n\n",
		site.PageURL(), site.Facet, len(site.AdUnits), site.Partners)
	rec := headerbid.VisitSite(exp.World(), site, 0, headerbid.DefaultCrawlConfig(7))

	for _, a := range rec.Auctions {
		fmt.Printf("auction %s unit=%s size=%s dur=%.0fms bids=%d",
			a.ID, a.AdUnit, a.Size, a.DurationMS, len(a.Bids))
		if a.Winner != "" {
			fmt.Printf(" winner=%s @ %.4f CPM", a.Winner, a.WinnerCPM)
		}
		fmt.Println()
		for _, b := range a.Bids {
			late := ""
			if b.Late {
				late = " (LATE — excluded from auction)"
			}
			fmt.Printf("  bid %-14s %.4f CPM %s %0.0fms%s\n",
				b.Bidder, b.CPM, b.Size, b.LatencyMS, late)
		}
	}
}
