// Quickstart: generate a small synthetic web, visit one HB-enabled page
// with HBDetector attached, and print what the detector observed — the
// single-page workflow the paper ships as a browser extension.
package main

import (
	"fmt"
	"log"

	"headerbid"
)

func main() {
	log.SetFlags(0)

	// A 200-site world, deterministically generated.
	cfg := headerbid.DefaultWorldConfig(7)
	cfg.NumSites = 200
	world := headerbid.GenerateWorld(cfg)

	// Pick the first hybrid-HB site: the richest facet (client-side
	// auction + DFP-style ad server adding its own demand).
	var site *headerbid.Site
	for _, s := range world.HBSites() {
		if s.Facet == headerbid.FacetHybrid {
			site = s
			break
		}
	}
	if site == nil {
		log.Fatal("no hybrid site generated (unexpected for this seed)")
	}
	fmt.Printf("visiting %s (ground truth: %s, %d ad units, partners %v)\n\n",
		site.PageURL(), site.Facet, len(site.AdUnits), site.Partners)

	// One clean-slate visit with the detector attached.
	rec := headerbid.VisitSite(world, site, 0, headerbid.DefaultCrawlConfig(7))

	fmt.Printf("detected HB:      %v\n", rec.HB)
	fmt.Printf("detected facet:   %s\n", rec.Facet)
	fmt.Printf("libraries seen:   %v\n", rec.Libraries)
	fmt.Printf("partners seen:    %v\n", rec.Partners)
	fmt.Printf("total HB latency: %.0f ms\n", rec.TotalHBLatencyMS)
	fmt.Printf("slots auctioned:  %d\n\n", rec.AdSlotsAuctioned)

	for _, a := range rec.Auctions {
		fmt.Printf("auction %s unit=%s size=%s dur=%.0fms bids=%d",
			a.ID, a.AdUnit, a.Size, a.DurationMS, len(a.Bids))
		if a.Winner != "" {
			fmt.Printf(" winner=%s @ %.4f CPM", a.Winner, a.WinnerCPM)
		}
		fmt.Println()
		for _, b := range a.Bids {
			late := ""
			if b.Late {
				late = " (LATE — excluded from auction)"
			}
			fmt.Printf("  bid %-14s %.4f CPM %s %0.0fms%s\n",
				b.Bidder, b.CPM, b.Size, b.LatencyMS, late)
		}
	}
}
