package headerbid

import (
	"headerbid/internal/analysis"
)

// Per-figure metric surface: every dataset-derived table and figure of
// the paper as an individually attachable Metric, re-exported from
// internal/analysis so external consumers can construct them (internal
// packages are unimportable outside this module). Attach any of these
// with WithMetrics, read them back via their typed Result methods or
// Results.Metrics; NewFigureReport bundles all of them plus rendering.
type (
	// SummaryMetric is the Table-1 roll-up (name "summary").
	SummaryMetric = analysis.SummaryMetric
	// AdoptionByRankBandMetric is §3.2 adoption per rank band
	// (name "adoption_by_rank_band").
	AdoptionByRankBandMetric = analysis.AdoptionByRankBandMetric
	// FacetBreakdownMetric is the §4.6 facet shares (name "facet_breakdown").
	FacetBreakdownMetric = analysis.FacetBreakdownMetric
	// TopPartnersMetric is Figure 8 (name "top_partners").
	TopPartnersMetric = analysis.TopPartnersMetric
	// UniquePartnersMetric counts distinct partners (name "unique_partners").
	UniquePartnersMetric = analysis.UniquePartnersMetric
	// PartnersPerSiteMetric is Figure 9 (name "partners_per_site").
	PartnersPerSiteMetric = analysis.PartnersPerSiteMetric
	// PartnerCombosMetric is Figure 10 (name "partner_combos").
	PartnerCombosMetric = analysis.PartnerCombosMetric
	// PartnersPerFacetMetric is Figure 11 (name "partners_per_facet").
	PartnersPerFacetMetric = analysis.PartnersPerFacetMetric
	// LatencyAccumulator is the Figure-12 latency CDF (name "latency_cdf").
	LatencyAccumulator = analysis.LatencyAccumulator
	// LatencyVsRankMetric is Figure 13 (name "latency_vs_rank").
	LatencyVsRankMetric = analysis.LatencyVsRankMetric
	// PartnerLatenciesMetric backs Figures 14 and 16 (name
	// "partner_latencies"); its Extremes method computes Figure 14.
	PartnerLatenciesMetric = analysis.PartnerLatenciesMetric
	// LatencyVsPartnerCountMetric is Figure 15 (name "latency_vs_partner_count").
	LatencyVsPartnerCountMetric = analysis.LatencyVsPartnerCountMetric
	// LatencyVsPopularityMetric is Figure 16 (name "latency_vs_popularity").
	LatencyVsPopularityMetric = analysis.LatencyVsPopularityMetric
	// LateBidsMetric is Figure 17 (name "late_bids").
	LateBidsMetric = analysis.LateBidsMetric
	// LateBidsPerPartnerMetric is Figure 18 (name "late_bids_per_partner").
	LateBidsPerPartnerMetric = analysis.LateBidsPerPartnerMetric
	// SlotsPerSiteMetric is Figure 19 (name "slots_per_site").
	SlotsPerSiteMetric = analysis.SlotsPerSiteMetric
	// LatencyVsSlotsMetric is Figure 20 (name "latency_vs_slots").
	LatencyVsSlotsMetric = analysis.LatencyVsSlotsMetric
	// SlotSizesMetric is Figure 21 (name "slot_sizes").
	SlotSizesMetric = analysis.SlotSizesMetric
	// PriceCDFMetric is Figure 22 (name "price_cdf").
	PriceCDFMetric = analysis.PriceCDFMetric
	// PricePerSizeMetric is Figure 23 (name "price_per_size").
	PricePerSizeMetric = analysis.PricePerSizeMetric
	// PriceVsPopularityMetric is Figure 24 (name "price_vs_popularity").
	PriceVsPopularityMetric = analysis.PriceVsPopularityMetric
	// TrafficMetric is the §7.3 overhead summary (name "traffic").
	TrafficMetric = analysis.TrafficMetric
	// DegradationMetric summarizes failure-regime degradation: partner
	// error rates, retries, abandonment, quarantine tally (name
	// "degradation"). All-zero on a fault-free crawl.
	DegradationMetric = analysis.DegradationMetric
	// DegradationResult is DegradationMetric's snapshot type.
	DegradationResult = analysis.DegradationResult
)

// NewSummaryMetric returns an empty Table-1 summary metric.
func NewSummaryMetric() *SummaryMetric { return analysis.NewSummary() }

// NewAdoptionByRankBand returns an empty §3.2 rank-band adoption metric.
func NewAdoptionByRankBand() *AdoptionByRankBandMetric { return analysis.NewAdoptionByRankBand() }

// NewFacetBreakdown returns an empty §4.6 facet-share metric.
func NewFacetBreakdown() *FacetBreakdownMetric { return analysis.NewFacetBreakdown() }

// NewTopPartners returns an empty Figure-8 metric; k<=0 reports all.
func NewTopPartners(k int) *TopPartnersMetric { return analysis.NewTopPartners(k) }

// NewUniquePartners returns an empty distinct-partner counter.
func NewUniquePartners() *UniquePartnersMetric { return analysis.NewUniquePartners() }

// NewPartnersPerSite returns an empty Figure-9 metric.
func NewPartnersPerSite() *PartnersPerSiteMetric { return analysis.NewPartnersPerSite() }

// NewPartnerCombos returns an empty Figure-10 metric; k<=0 reports all.
func NewPartnerCombos(k int) *PartnerCombosMetric { return analysis.NewPartnerCombos(k) }

// NewPartnersPerFacet returns an empty Figure-11 metric; k<=0 reports all.
func NewPartnersPerFacet(k int) *PartnersPerFacetMetric { return analysis.NewPartnersPerFacet(k) }

// NewLatencyAccumulator returns an empty Figure-12 latency CDF metric.
func NewLatencyAccumulator() *LatencyAccumulator { return analysis.NewLatencyAccumulator() }

// NewLatencyVsRank returns an empty Figure-13 metric (binWidth<=0 uses
// the paper's 500).
func NewLatencyVsRank(binWidth int) *LatencyVsRankMetric { return analysis.NewLatencyVsRank(binWidth) }

// NewPartnerLatencies returns an empty per-partner latency metric
// (Figures 14 and 16 raw material).
func NewPartnerLatencies() *PartnerLatenciesMetric { return analysis.NewPartnerLatencies() }

// NewLatencyVsPartnerCount returns an empty Figure-15 metric
// (maxPartners<=0 uses the paper's 15).
func NewLatencyVsPartnerCount(maxPartners int) *LatencyVsPartnerCountMetric {
	return analysis.NewLatencyVsPartnerCount(maxPartners)
}

// NewLatencyVsPopularity returns an empty Figure-16 metric over reg
// (binWidth<=0 uses the paper's 10).
func NewLatencyVsPopularity(reg *Registry, binWidth int) *LatencyVsPopularityMetric {
	return analysis.NewLatencyVsPopularity(reg, binWidth)
}

// NewLateBids returns an empty Figure-17 metric.
func NewLateBids() *LateBidsMetric { return analysis.NewLateBids() }

// NewLateBidsPerPartner returns an empty Figure-18 metric; minBids
// filters noise; k<=0 reports all.
func NewLateBidsPerPartner(k, minBids int) *LateBidsPerPartnerMetric {
	return analysis.NewLateBidsPerPartner(k, minBids)
}

// NewSlotsPerSite returns an empty Figure-19 metric.
func NewSlotsPerSite() *SlotsPerSiteMetric { return analysis.NewSlotsPerSite() }

// NewLatencyVsSlots returns an empty Figure-20 metric (maxSlots<=0 uses 15).
func NewLatencyVsSlots(maxSlots int) *LatencyVsSlotsMetric {
	return analysis.NewLatencyVsSlots(maxSlots)
}

// NewSlotSizes returns an empty Figure-21 metric; k<=0 reports all.
func NewSlotSizes(k int) *SlotSizesMetric { return analysis.NewSlotSizes(k) }

// NewPriceCDF returns an empty Figure-22 metric.
func NewPriceCDF() *PriceCDFMetric { return analysis.NewPriceCDF() }

// NewPricePerSize returns an empty Figure-23 metric; minBids filters
// sparsely observed sizes.
func NewPricePerSize(minBids int) *PricePerSizeMetric { return analysis.NewPricePerSize(minBids) }

// NewPriceVsPopularity returns an empty Figure-24 metric over reg
// (binWidth<=0 uses the paper's 10).
func NewPriceVsPopularity(reg *Registry, binWidth int) *PriceVsPopularityMetric {
	return analysis.NewPriceVsPopularity(reg, binWidth)
}

// NewTraffic returns an empty §7.3 overhead metric;
// expectedWaterfallPasses <=0 disables the amplification estimate.
func NewTraffic(expectedWaterfallPasses float64) *TrafficMetric {
	return analysis.NewTraffic(expectedWaterfallPasses)
}

// NewDegradation returns an empty failure-degradation metric.
func NewDegradation() *DegradationMetric { return analysis.NewDegradation() }
