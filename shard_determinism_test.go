package headerbid_test

import (
	"bytes"
	"context"
	"runtime"
	"strconv"
	"testing"

	headerbid "headerbid"
)

// shardFileOf runs one slice of the seed's world and returns its
// marshaled shard file: the distributed crawl's worker half, in-process.
func shardFileOf(t *testing.T, seed int64, sites, days, index, count int) []byte {
	t.Helper()
	fr := headerbid.NewFigureReport()
	deg := headerbid.NewDegradation()
	exp := headerbid.NewExperiment(
		headerbid.WithSeed(seed),
		headerbid.WithSites(sites),
		headerbid.WithDays(days),
		headerbid.WithShard(index, count),
		headerbid.WithMetrics(fr, deg),
	)
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatalf("shard %d/%d: %v", index, count, err)
	}
	var buf bytes.Buffer
	h := headerbid.ShardHeader{Seed: seed, ShardCount: count, Shards: []int{index}}
	if err := headerbid.MarshalShard(&buf, h, []headerbid.MetricCodec{fr, deg}); err != nil {
		t.Fatalf("shard %d/%d: %v", index, count, err)
	}
	return buf.Bytes()
}

// TestShardedCrawlFoldsToSingleProcessReport is the distributed crawl's
// end-to-end contract: crawl the world as n independent shard runs,
// marshal each shard's metric state to its file bytes, fold the files
// back (in reverse order, exercising order independence), and the
// rendered figure report is byte-identical to a single-process crawl of
// the same world. Checked for n = 1, 3 and NumCPU.
func TestShardedCrawlFoldsToSingleProcessReport(t *testing.T) {
	const seed, sites, days = 11, 400, 2

	single := headerbid.NewFigureReport()
	exp := headerbid.NewExperiment(
		headerbid.WithSeed(seed),
		headerbid.WithSites(sites),
		headerbid.WithDays(days),
		headerbid.WithMetrics(single),
	)
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	single.Render(&want)

	counts := []int{1, 3}
	if c := runtime.NumCPU(); c != 1 && c != 3 {
		counts = append(counts, c)
	}
	for _, n := range counts {
		t.Run("n="+strconv.Itoa(n), func(t *testing.T) {
			files := make([][]byte, n)
			for i := 0; i < n; i++ {
				files[i] = shardFileOf(t, seed, sites, days, i, n)
			}
			var fold headerbid.ShardFold
			for i := n - 1; i >= 0; i-- {
				h, ms, err := headerbid.UnmarshalShard(bytes.NewReader(files[i]))
				if err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
				if err := fold.Add(h, ms); err != nil {
					t.Fatalf("folding shard %d: %v", i, err)
				}
			}
			if !fold.Complete() {
				t.Fatalf("fold incomplete, missing %v", fold.Missing())
			}
			m, ok := fold.Get("figure_report")
			if !ok {
				t.Fatal("fold carries no figure_report")
			}
			var got bytes.Buffer
			m.(*headerbid.FigureReport).Render(&got)
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("folded report differs from single-process report (%d vs %d bytes)", got.Len(), want.Len())
			}
		})
	}
}

// TestWithWorldShardMatchesGeneratedShard: supplying a pre-generated
// full world with WithShard must crawl exactly the sites a lazily
// generated shard world crawls — the crawl-time filter and the
// generation-time skip agree on membership.
func TestWithWorldShardMatchesGeneratedShard(t *testing.T) {
	const seed, sites, n = 5, 300, 4
	cfg := headerbid.DefaultWorldConfig(seed)
	cfg.NumSites = sites
	full := headerbid.GenerateWorld(cfg)
	for i := 0; i < n; i++ {
		lazy := headerbid.NewFigureReport()
		expLazy := headerbid.NewExperiment(
			headerbid.WithSeed(seed),
			headerbid.WithSites(sites),
			headerbid.WithShard(i, n),
			headerbid.WithMetrics(lazy),
		)
		if _, err := expLazy.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		filtered := headerbid.NewFigureReport()
		expFull := headerbid.NewExperiment(
			headerbid.WithWorld(full),
			headerbid.WithSeed(seed),
			headerbid.WithShard(i, n),
			headerbid.WithMetrics(filtered),
		)
		if _, err := expFull.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		lazy.Render(&a)
		filtered.Render(&b)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("shard %d/%d: generated-shard and filtered-full-world reports differ", i, n)
		}
	}
}
