package headerbid

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestNewSweepDefaultAxes(t *testing.T) {
	s := NewSweep()
	if len(s.axes) != 3 {
		t.Fatalf("default sweep has %d axes, want 3 (timeout, partners, network)", len(s.axes))
	}
	names := []string{s.axes[0].Name, s.axes[1].Name, s.axes[2].Name}
	want := []string{"timeout", "partners", "network"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("axis %d = %q, want %q", i, names[i], want[i])
		}
	}
}

// The sweep's base variant reproduces a plain Experiment with the same
// seed byte-for-byte: the JSONL dataset and the rendered figure report.
func TestSweepBaselineMatchesExperiment(t *testing.T) {
	const sites, seed = 400, 9

	var expJSONL bytes.Buffer
	expFR := NewFigureReport()
	_, err := NewExperiment(
		WithSites(sites), WithSeed(seed),
		WithSink(NewJSONLSink(&expJSONL)), WithMetrics(expFR),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var expReport bytes.Buffer
	expFR.Render(&expReport)

	var baseJSONL bytes.Buffer
	baseSink := NewJSONLSink(&baseJSONL)
	cmp, err := NewSweep(
		WithSweepSites(sites), WithSweepSeed(seed),
		WithAxes(TimeoutAxis(500), PartnerAxis(1), SyncAxis()),
		WithVariantConcurrency(4),
		WithVariantMetrics(func() []Metric { return []Metric{NewFigureReport()} }),
		WithSweepSink(SweepSinkFunc(func(v SweepVisit) error {
			if v.Variant == "baseline" {
				return baseSink.Consume(v.Visit)
			}
			return nil
		})),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := baseSink.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(baseJSONL.Bytes(), expJSONL.Bytes()) {
		t.Errorf("baseline JSONL differs from Experiment JSONL (%d vs %d bytes)",
			baseJSONL.Len(), expJSONL.Len())
	}

	var baseReport bytes.Buffer
	cmp.Baseline.Extra[0].(*FigureReport).Render(&baseReport)
	if !bytes.Equal(baseReport.Bytes(), expReport.Bytes()) {
		t.Error("baseline figure report differs from Experiment figure report")
	}
}

// WithOverlay on a single Experiment is the one-variant counterpart of
// a sweep axis: identical overlays produce identical datasets.
func TestWithOverlayMatchesSweepVariant(t *testing.T) {
	const sites, seed = 300, 9
	ov := Overlay{TimeoutMS: 500}

	var expJSONL bytes.Buffer
	_, err := NewExperiment(
		WithSites(sites), WithSeed(seed), WithOverlay(ov),
		WithSink(NewJSONLSink(&expJSONL)),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var varJSONL bytes.Buffer
	varSink := NewJSONLSink(&varJSONL)
	_, err = NewSweep(
		WithSweepSites(sites), WithSweepSeed(seed),
		WithAxes(TimeoutAxis(500)),
		WithSweepSink(SweepSinkFunc(func(v SweepVisit) error {
			if v.Variant == "timeout=500ms" {
				return varSink.Consume(v.Visit)
			}
			return nil
		})),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := varSink.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(expJSONL.Bytes(), varJSONL.Bytes()) {
		t.Errorf("WithOverlay dataset differs from the equivalent sweep variant (%d vs %d bytes)",
			expJSONL.Len(), varJSONL.Len())
	}
}

// Distinct variants whose names mangle to the same filename must fail
// loudly rather than interleave into one dataset file.
func TestVariantJSONLSinkCollision(t *testing.T) {
	sink, err := NewVariantJSONLSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	v := Visit{Record: &SiteRecord{Domain: "d.example"}}
	if err := sink.Consume(SweepVisit{Axis: "ax", Variant: "t=1s", Visit: v}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Consume(SweepVisit{Axis: "ax", Variant: "t=1s", Visit: v}); err != nil {
		t.Fatalf("same variant must keep writing: %v", err)
	}
	if err := sink.Consume(SweepVisit{Axis: "ax", Variant: "t+1s", Visit: v}); err == nil {
		t.Fatal("colliding variant filename must error, not interleave")
	}
}

func TestVariantJSONLSink(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewVariantJSONLSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewSweep(
		WithSweepSites(200), WithSweepSeed(2),
		WithAxes(TimeoutAxis(1000)),
		WithSweepSink(sink),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"baseline.jsonl", "timeout_timeout_1000ms.jsonl"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("variant dataset missing: %v", err)
		}
		if lines := bytes.Count(data, []byte{'\n'}); lines != 200 {
			t.Errorf("%s has %d records, want 200", name, lines)
		}
	}

	// The baseline file matches a plain Experiment's dataset.
	var expJSONL bytes.Buffer
	if _, err := NewExperiment(
		WithSites(200), WithSeed(2), WithSink(NewJSONLSink(&expJSONL)),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "baseline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, expJSONL.Bytes()) {
		t.Error("baseline.jsonl differs from a plain Experiment dataset")
	}
}
