package headerbid

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"headerbid/internal/analysis"
)

// TestStreamingSummaryMatchesBatch is the redesign's core equivalence
// claim: a crawl driven through a SummarySink and a LatencySink computes
// byte-identical Summary and latency stats to the batch
// Summarize(Crawl(...)) / analysis.LatencyCDF path on a seeded 1k-site
// world — without the experiment retaining a single record.
func TestStreamingSummaryMatchesBatch(t *testing.T) {
	const seed, sites = 1, 1000
	cfg := DefaultWorldConfig(seed)
	cfg.NumSites = sites
	w := GenerateWorld(cfg)

	// Batch path (the deprecated facade).
	recs := Crawl(w, DefaultCrawlConfig(seed))
	batchSum := Summarize(recs)
	batchLat := analysis.LatencyCDF(recs)
	var batchJSONL bytes.Buffer
	if err := WriteDataset(&batchJSONL, recs); err != nil {
		t.Fatal(err)
	}

	// Streaming path: summary + latency + JSONL sinks, no retention.
	sumSink := NewSummarySink()
	latSink := NewLatencySink()
	var streamJSONL bytes.Buffer
	res, err := NewExperiment(
		WithWorld(w),
		WithSeed(seed),
		WithSink(sumSink, latSink, NewJSONLSink(&streamJSONL)),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got := sumSink.Summary(); got != batchSum {
		t.Fatalf("summary sink diverged:\n got %+v\nwant %+v", got, batchSum)
	}
	if got := sumSink.Summary().AdoptionRate(); got != batchSum.AdoptionRate() {
		t.Fatalf("adoption rate diverged: %v vs %v", got, batchSum.AdoptionRate())
	}
	if res.Summary != batchSum {
		t.Fatalf("Results.Summary diverged:\n got %+v\nwant %+v", res.Summary, batchSum)
	}
	if got := latSink.Result(); !reflect.DeepEqual(got, batchLat) {
		t.Fatalf("latency sink diverged:\n got %+v\nwant %+v", got, batchLat)
	}
	if !reflect.DeepEqual(res.Latency, batchLat) {
		t.Fatalf("Results.Latency diverged")
	}
	// The streamed dataset must be byte-identical to the batch one: same
	// records, same order, same encoding.
	if !bytes.Equal(streamJSONL.Bytes(), batchJSONL.Bytes()) {
		t.Fatalf("streamed JSONL differs from batch JSONL (%d vs %d bytes)",
			streamJSONL.Len(), batchJSONL.Len())
	}
	if res.Stats.Visits != sites || res.Stats.HB != batchSum.SitesWithHB {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

// TestExperimentCancellation: Run must stop promptly mid-crawl and
// return ctx.Err() when the context is cancelled.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	start := time.Now()
	res, err := NewExperiment(
		WithSites(600),
		WithSeed(3),
		WithSink(SinkFunc(func(v Visit) error {
			seen++
			if seen == 15 {
				cancel()
			}
			return nil
		})),
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen >= 600 {
		t.Fatalf("crawl completed despite cancellation (%d visits)", seen)
	}
	// Results fold on the worker shards, so after cancellation they cover
	// every *completed* visit — at least the emitted ones the sink saw
	// (in-flight visits may be folded but never emitted), and well short
	// of the full crawl.
	if res.Stats.Visits < seen {
		t.Fatalf("partial results lost visits: stats=%d seen=%d", res.Stats.Visits, seen)
	}
	if res.Stats.Visits >= 600 {
		t.Fatalf("stats report a full crawl (%d visits) despite cancellation", res.Stats.Visits)
	}
	if res.Summary.SitesCrawled != res.Stats.Visits {
		t.Fatalf("metrics disagree: summary=%d sites, stats=%d visits (single-day crawl)",
			res.Summary.SitesCrawled, res.Stats.Visits)
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("cancellation took %s", d)
	}
}

// TestExperimentSinkErrorAborts: a failing sink aborts the run and its
// error (wrapped with the sink's identity) is returned.
func TestExperimentSinkErrorAborts(t *testing.T) {
	sentinel := errors.New("disk full")
	n := 0
	_, err := NewExperiment(
		WithSites(200),
		WithSeed(5),
		WithSink(SinkFunc(func(v Visit) error {
			n++
			if n == 3 {
				return sentinel
			}
			return nil
		})),
	).Run(context.Background())
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if n != 3 {
		t.Fatalf("sink consumed %d visits after its error", n)
	}
}

// TestExperimentOptions: option plumbing — explicit world config, days,
// workers, site filter and first-day offset all reach the crawler.
func TestExperimentOptions(t *testing.T) {
	collect := NewCollectSink()
	res, err := NewExperiment(
		WithWorldConfig(func() WorldConfig {
			c := DefaultWorldConfig(9)
			c.NumSites = 150
			return c
		}()),
		WithSeed(9),
		WithDays(2),
		WithWorkers(2),
		WithSink(collect),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.SitesCrawled != 150 || res.Summary.CrawlDays != 2 {
		t.Fatalf("summary = %+v", res.Summary)
	}
	if len(collect.Records()) <= 150 {
		t.Fatalf("2-day crawl emitted %d records, want >150", len(collect.Records()))
	}

	// Filtered single-site experiment on a specific day.
	exp := NewExperiment(WithSites(150), WithSeed(9))
	site := exp.World().HBSites()[0]
	one := NewCollectSink()
	_, err = NewExperiment(
		WithWorld(exp.World()),
		WithSeed(9),
		WithFirstDay(2),
		WithSiteFilter(func(s *Site) bool { return s.Domain == site.Domain }),
		WithSink(one),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Records()) != 1 || one.Records()[0].VisitDay != 2 {
		t.Fatalf("filtered records = %+v", one.Records())
	}
	// Must match the single-page entry point exactly.
	want := VisitSite(exp.World(), site, 2, DefaultCrawlConfig(9))
	if got := one.Records()[0]; got.TotalHBLatencyMS != want.TotalHBLatencyMS || got.HB != want.HB {
		t.Fatalf("filtered visit diverged from VisitSite: %+v vs %+v", got, want)
	}
}

// TestWithSeedOverridesWorldConfig: WithSeed promises to seed world
// generation even when an explicit WorldConfig (with its own seed) is
// supplied, mirroring how it overrides CrawlConfig's seed.
func TestWithSeedOverridesWorldConfig(t *testing.T) {
	cfg := DefaultWorldConfig(1)
	cfg.NumSites = 80
	reseeded := NewExperiment(WithWorldConfig(cfg), WithSeed(42)).World()
	want := func() *World {
		c := DefaultWorldConfig(42)
		c.NumSites = 80
		return GenerateWorld(c)
	}()
	if len(reseeded.HBSites()) != len(want.HBSites()) {
		t.Fatalf("WithSeed ignored by world generation: %d HB sites, want %d",
			len(reseeded.HBSites()), len(want.HBSites()))
	}
	// And without WithSeed the explicit config's seed is respected.
	asIs := NewExperiment(WithWorldConfig(cfg)).World()
	seed1 := GenerateWorld(cfg)
	if len(asIs.HBSites()) != len(seed1.HBSites()) {
		t.Fatalf("explicit config seed not respected")
	}
}

// TestDeprecatedWrappersStillWork: the legacy batch facade must keep its
// exact behavior now that it rides on the Experiment.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	cfg := DefaultWorldConfig(4)
	cfg.NumSites = 120
	w := GenerateWorld(cfg)
	recs := Crawl(w, DefaultCrawlConfig(4))
	if len(recs) != 120 {
		t.Fatalf("Crawl returned %d records", len(recs))
	}
	var last, total int
	recs2 := CrawlWithProgress(w, DefaultCrawlConfig(4), func(d, tot int) { last, total = d, tot })
	if last != 120 || total != 120 {
		t.Fatalf("progress ended at %d/%d", last, total)
	}
	for i := range recs {
		if recs[i].Domain != recs2[i].Domain || recs[i].TotalHBLatencyMS != recs2[i].TotalHBLatencyMS {
			t.Fatalf("wrapper crawls diverged at %d", i)
		}
	}
}
